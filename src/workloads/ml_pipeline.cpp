#include "workloads/ml_pipeline.h"

#include "perf/analytic.h"

namespace aarc::workloads {

namespace {
std::unique_ptr<perf::PerfModel> model(double io, double serial, double parallel,
                                       double max_par, double working_set, double min_mem,
                                       double pressure = 3.0) {
  perf::AnalyticParams p;
  p.io_seconds = io;
  p.serial_seconds = serial;
  p.parallel_seconds = parallel;
  p.max_parallelism = max_par;
  p.working_set_mb = working_set;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = pressure;
  p.input_work_exp = 1.0;
  p.input_memory_exp = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}
}  // namespace

Workload make_ml_pipeline() {
  platform::Workflow wf("ml_pipeline");

  // Training is embarrassingly parallel over samples/trees with a small
  // working set, which is exactly what drives the paper's 4 vCPU / 512 MB
  // decoupled optimum (87.5% memory cut versus the coupled 4 vCPU point).
  //                   io  serial parallel maxP  wset  minMem
  const auto pca = wf.add_function("pca", model(1.0, 2.0, 36.0, 4.0, 470.0, 256.0));
  const auto train_a = wf.add_function("train_a", model(1.0, 2.0, 60.0, 4.0, 450.0, 256.0));
  const auto train_b = wf.add_function("train_b", model(1.0, 2.0, 52.0, 4.0, 430.0, 256.0));
  const auto train_c = wf.add_function("train_c", model(1.0, 2.0, 70.0, 4.0, 500.0, 256.0));
  const auto combine = wf.add_function("combine", model(1.0, 3.0, 8.0, 2.0, 310.0, 192.0));
  const auto test = wf.add_function("test", model(2.0, 3.0, 12.0, 4.0, 380.0, 256.0));

  // Broadcast: PCA's output is sent to every trainer.
  wf.add_edge(pca, train_a);
  wf.add_edge(pca, train_b);
  wf.add_edge(pca, train_c);
  wf.add_edge(train_a, combine);
  wf.add_edge(train_b, combine);
  wf.add_edge(train_c, combine);
  wf.add_edge(combine, test);

  Workload w(std::move(wf));
  w.slo_seconds = 120.0;
  w.input_sensitive = false;
  w.input_classes = {{InputClass::Light, 1.0}, {InputClass::Middle, 1.0},
                     {InputClass::Heavy, 1.0}};
  return w;
}

}  // namespace aarc::workloads
