#include "workloads/catalog.h"

#include "support/contracts.h"
#include "workloads/chatbot.h"
#include "workloads/data_analytics.h"
#include "workloads/ml_pipeline.h"
#include "workloads/video_analysis.h"

namespace aarc::workloads {

using support::expects;

std::string to_string(InputClass c) {
  switch (c) {
    case InputClass::Light:
      return "light";
    case InputClass::Middle:
      return "middle";
    case InputClass::Heavy:
      return "heavy";
  }
  return "?";
}

double Workload::scale_for(InputClass c) const {
  for (const auto& entry : input_classes) {
    if (entry.input_class == c) return entry.scale;
  }
  return 1.0;
}

std::vector<std::string> paper_workload_names() {
  return {"chatbot", "ml_pipeline", "video_analysis"};
}

Workload make_by_name(std::string_view name) {
  if (name == "chatbot") return make_chatbot();
  if (name == "ml_pipeline") return make_ml_pipeline();
  if (name == "video_analysis") return make_video_analysis();
  if (name == "data_analytics") return make_data_analytics();
  expects(false, std::string("unknown workload: ") + std::string(name));
  // Unreachable; expects() always throws on false.
  throw support::ContractViolation("unreachable");
}

std::vector<Workload> make_paper_workloads() {
  std::vector<Workload> out;
  for (const auto& name : paper_workload_names()) out.push_back(make_by_name(name));
  return out;
}

std::vector<std::string> all_workload_names() {
  auto names = paper_workload_names();
  names.push_back("data_analytics");
  return names;
}

}  // namespace aarc::workloads
