#include "workloads/catalog.h"

#include <algorithm>
#include <map>

#include "support/contracts.h"
#include "workloads/chatbot.h"
#include "workloads/data_analytics.h"
#include "workloads/ml_pipeline.h"
#include "workloads/video_analysis.h"

namespace aarc::workloads {

using support::expects;

namespace {

/// Runtime registrations (e.g. generated scenarios loaded from disk), keyed
/// by name.  A std::map keeps all_workload_names deterministic.
std::map<std::string, Workload>& registry() {
  static std::map<std::string, Workload> entries;
  return entries;
}

/// Deep-copy a workload (Workflow is move-only but clonable).
Workload clone_workload(const Workload& original) {
  Workload copy(original.workflow.clone());
  copy.slo_seconds = original.slo_seconds;
  copy.input_sensitive = original.input_sensitive;
  copy.input_classes = original.input_classes;
  return copy;
}

bool is_builtin(std::string_view name) {
  return name == "chatbot" || name == "ml_pipeline" || name == "video_analysis" ||
         name == "data_analytics";
}

}  // namespace

std::string to_string(InputClass c) {
  switch (c) {
    case InputClass::Light:
      return "light";
    case InputClass::Middle:
      return "middle";
    case InputClass::Heavy:
      return "heavy";
  }
  return "?";
}

double Workload::scale_for(InputClass c) const {
  for (const auto& entry : input_classes) {
    if (entry.input_class == c) return entry.scale;
  }
  return 1.0;
}

std::vector<std::string> paper_workload_names() {
  return {"chatbot", "ml_pipeline", "video_analysis"};
}

Workload make_by_name(std::string_view name) {
  if (name == "chatbot") return make_chatbot();
  if (name == "ml_pipeline") return make_ml_pipeline();
  if (name == "video_analysis") return make_video_analysis();
  if (name == "data_analytics") return make_data_analytics();
  const auto it = registry().find(std::string(name));
  if (it != registry().end()) return clone_workload(it->second);
  expects(false, std::string("unknown workload: ") + std::string(name));
  // Unreachable; expects() always throws on false.
  throw support::ContractViolation("unreachable");
}

std::vector<Workload> make_paper_workloads() {
  std::vector<Workload> out;
  for (const auto& name : paper_workload_names()) out.push_back(make_by_name(name));
  return out;
}

std::vector<std::string> all_workload_names() {
  auto names = paper_workload_names();
  names.push_back("data_analytics");
  for (const auto& [name, workload] : registry()) names.push_back(name);
  return names;
}

void register_workload(const std::string& name, Workload workload) {
  expects(!name.empty(), "workload registration needs a name");
  expects(!is_builtin(name), "cannot shadow built-in workload: " + name);
  registry().insert_or_assign(name, std::move(workload));
}

void unregister_workload(const std::string& name) { registry().erase(name); }

}  // namespace aarc::workloads
