// The Chatbot workflow (paper Fig. 1, left).
//
// "Processes input, trains classifiers in parallel, and uses remote storage
// for real-time intent detection."  Scatter communication pattern: a
// preprocessing stage fans out to four classifier-training branches which
// join into an aggregation stage followed by intent detection against remote
// storage.  The functions are dominated by serial compute with modest
// intra-function parallelism and small working sets, which is what makes the
// whole workflow's affinity land near 1 vCPU / 512 MB (Section II-A).
#pragma once

#include "workloads/workload.h"

namespace aarc::workloads {

/// Build the Chatbot workload (SLO 120 s, Section IV-A(c)).
Workload make_chatbot();

}  // namespace aarc::workloads
