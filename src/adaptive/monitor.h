// Online drift detection for deployed configurations.
//
// A configuration found by AARC is only optimal for the conditions it was
// profiled under.  In production, input characteristics drift (the paper's
// §IV-D motivates this for input-sensitive workflows).  The monitor watches
// the stream of end-to-end runtimes of a deployed workflow and flags when
// the configuration should be recomputed:
//   * SLO risk: the recent runtime level approaches or exceeds the SLO;
//   * drift: the recent level departs from the expected level by more than
//     a configurable factor in either direction (slower = SLO risk,
//     faster = money on the table).
//
// Detection uses an exponentially weighted moving average (EWMA), the
// standard low-memory level estimator.
#pragma once

#include <cstddef>

namespace aarc::adaptive {

struct MonitorOptions {
  double ewma_alpha = 0.2;        ///< EWMA weight of the newest observation
  double slo_risk_fraction = 0.9; ///< flag when EWMA > slo * this
  double drift_up_factor = 1.25;  ///< flag when EWMA > expected * this
  double drift_down_factor = 0.6; ///< flag when EWMA < expected * this
  std::size_t min_observations = 5;  ///< no verdicts before this many samples

  /// EWMA weight for the request failure indicator (crashes / timeouts).
  double failure_ewma_alpha = 0.2;
  /// Flag SloRisk when the failure EWMA exceeds this rate: a failed request
  /// never met its deadline, so a sustained failure level is an SLO problem
  /// even while the surviving requests look fast.
  double failure_rate_threshold = 0.10;
};

enum class DriftVerdict {
  Healthy,       ///< keep the configuration
  SloRisk,       ///< runtime level approaching/over the SLO
  DriftedSlower, ///< sustained slowdown vs expectation
  DriftedFaster, ///< sustained speedup vs expectation (over-provisioned now)
};

const char* to_string(DriftVerdict verdict);

class DriftMonitor {
 public:
  /// `expected_makespan` is the level the deployed configuration was
  /// validated at; `slo_seconds` the workflow's SLO.
  DriftMonitor(double expected_makespan, double slo_seconds, MonitorOptions options = {});

  /// Feed one observed end-to-end runtime (a successful request; also decays
  /// the failure level).
  void observe(double makespan_seconds);

  /// Feed one failed request (crash after retries, timeout, OOM).  Failed
  /// requests have no runtime, so they only move the failure EWMA.
  void observe_failure();

  std::size_t observations() const { return count_; }
  double ewma() const { return ewma_; }
  double expected() const { return expected_; }
  /// EWMA of the failure indicator (0 = all succeeding, 1 = all failing).
  double failure_ewma() const { return failure_ewma_; }

  /// Current verdict (Healthy until min_observations reached).
  DriftVerdict verdict() const;
  bool should_reconfigure() const { return verdict() != DriftVerdict::Healthy; }

  /// Ratio of the observed level to the expected level — the scale estimate
  /// a re-scheduling pass should use (1.0 until observations accumulate).
  double estimated_drift_ratio() const;

  /// Re-arm after a reconfiguration with a new expectation.
  void reset(double expected_makespan);

 private:
  double expected_;
  double slo_;
  MonitorOptions options_;
  double ewma_ = 0.0;
  double failure_ewma_ = 0.0;
  std::size_t count_ = 0;        ///< successful observations (runtime EWMA)
  std::size_t total_count_ = 0;  ///< all observations, failures included
};

}  // namespace aarc::adaptive
