#include "adaptive/monitor.h"

#include "support/contracts.h"

namespace aarc::adaptive {

using support::expects;

const char* to_string(DriftVerdict verdict) {
  switch (verdict) {
    case DriftVerdict::Healthy:
      return "healthy";
    case DriftVerdict::SloRisk:
      return "slo-risk";
    case DriftVerdict::DriftedSlower:
      return "drifted-slower";
    case DriftVerdict::DriftedFaster:
      return "drifted-faster";
  }
  return "?";
}

DriftMonitor::DriftMonitor(double expected_makespan, double slo_seconds,
                           MonitorOptions options)
    : expected_(expected_makespan), slo_(slo_seconds), options_(options) {
  expects(expected_makespan > 0.0, "expected makespan must be positive");
  expects(slo_seconds > 0.0, "SLO must be positive");
  expects(options.ewma_alpha > 0.0 && options.ewma_alpha <= 1.0,
          "EWMA alpha must be in (0, 1]");
  expects(options.slo_risk_fraction > 0.0 && options.slo_risk_fraction <= 1.0,
          "slo_risk_fraction must be in (0, 1]");
  expects(options.drift_up_factor > 1.0, "drift_up_factor must exceed 1");
  expects(options.drift_down_factor > 0.0 && options.drift_down_factor < 1.0,
          "drift_down_factor must be in (0, 1)");
  expects(options.failure_ewma_alpha > 0.0 && options.failure_ewma_alpha <= 1.0,
          "failure EWMA alpha must be in (0, 1]");
  expects(options.failure_rate_threshold > 0.0 && options.failure_rate_threshold <= 1.0,
          "failure_rate_threshold must be in (0, 1]");
}

void DriftMonitor::observe(double makespan_seconds) {
  expects(makespan_seconds > 0.0, "observed makespan must be positive");
  if (count_ == 0) {
    ewma_ = makespan_seconds;
  } else {
    ewma_ = options_.ewma_alpha * makespan_seconds + (1.0 - options_.ewma_alpha) * ewma_;
  }
  ++count_;
  failure_ewma_ *= 1.0 - options_.failure_ewma_alpha;  // success = 0 observation
  ++total_count_;
}

void DriftMonitor::observe_failure() {
  failure_ewma_ =
      options_.failure_ewma_alpha + (1.0 - options_.failure_ewma_alpha) * failure_ewma_;
  ++total_count_;
}

DriftVerdict DriftMonitor::verdict() const {
  // A sustained failure level is an SLO problem no matter how fast the
  // surviving requests are — check it first, against all observations.
  if (total_count_ >= options_.min_observations &&
      failure_ewma_ > options_.failure_rate_threshold) {
    return DriftVerdict::SloRisk;
  }
  if (count_ < options_.min_observations) return DriftVerdict::Healthy;
  if (ewma_ > slo_ * options_.slo_risk_fraction) return DriftVerdict::SloRisk;
  if (ewma_ > expected_ * options_.drift_up_factor) return DriftVerdict::DriftedSlower;
  if (ewma_ < expected_ * options_.drift_down_factor) return DriftVerdict::DriftedFaster;
  return DriftVerdict::Healthy;
}

double DriftMonitor::estimated_drift_ratio() const {
  if (count_ < options_.min_observations) return 1.0;
  return ewma_ / expected_;
}

void DriftMonitor::reset(double expected_makespan) {
  expects(expected_makespan > 0.0, "expected makespan must be positive");
  expected_ = expected_makespan;
  ewma_ = 0.0;
  failure_ewma_ = 0.0;
  count_ = 0;
  total_count_ = 0;
}

}  // namespace aarc::adaptive
