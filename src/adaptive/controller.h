// Adaptive controller: drift monitor + Graph-Centric Scheduler in a loop.
//
// Owns the deployed configuration of one workload.  Each completed request's
// runtime is fed to the monitor; when the monitor flags SLO risk or drift,
// the controller re-runs AARC at the estimated new input scale and swaps the
// configuration.  This closes the loop the paper leaves as the §IV-D
// plugin's "when a request arrives" step for workloads whose input mix
// shifts over time.
#pragma once

#include <cstddef>

#include "aarc/scheduler.h"
#include "adaptive/monitor.h"
#include "workloads/workload.h"

namespace aarc::adaptive {

struct ControllerOptions {
  MonitorOptions monitor;
  core::SchedulerOptions scheduler;
  /// Cool-down: minimum observations between two reconfigurations.
  std::size_t min_observations_between_reconfigs = 10;
};

class AdaptiveController {
 public:
  /// Deploys an initial configuration by running AARC at scale 1.
  /// The workload and executor must outlive the controller.
  AdaptiveController(const workloads::Workload& workload,
                     const platform::Executor& executor, platform::ConfigGrid grid,
                     ControllerOptions options = {});

  const platform::WorkflowConfig& current_config() const { return config_; }
  std::size_t reconfigurations() const { return reconfigurations_; }
  double current_scale_estimate() const { return scale_estimate_; }
  const DriftMonitor& monitor() const { return monitor_; }

  /// Feed one completed request's end-to-end runtime.  Returns true when
  /// this observation triggered a reconfiguration.
  bool observe(double makespan_seconds);

  /// Feed one failed request (crash after retries, timeout, OOM).  A
  /// sustained failure level flags SLO risk in the monitor and triggers a
  /// reconfiguration just like a runtime regression.  Returns true when this
  /// observation triggered one.
  bool observe_failure();

  /// Samples spent on (re)scheduling so far.
  std::size_t scheduling_samples() const { return scheduling_samples_; }

 private:
  bool maybe_reschedule();
  void reschedule(double scale);

  const workloads::Workload* workload_;
  const platform::Executor* executor_;
  platform::ConfigGrid grid_;
  ControllerOptions options_;
  platform::WorkflowConfig config_;
  DriftMonitor monitor_;
  double scale_estimate_ = 1.0;
  std::size_t reconfigurations_ = 0;
  std::size_t observations_since_reconfig_ = 0;
  std::size_t scheduling_samples_ = 0;
};

}  // namespace aarc::adaptive
