#include "adaptive/controller.h"

#include <algorithm>

#include "support/contracts.h"
#include "support/log.h"

namespace aarc::adaptive {

using support::expects;

namespace {
/// A placeholder expectation for the monitor before the first schedule runs.
constexpr double kUninitializedExpectation = 1.0;
}  // namespace

AdaptiveController::AdaptiveController(const workloads::Workload& workload,
                                       const platform::Executor& executor,
                                       platform::ConfigGrid grid,
                                       ControllerOptions options)
    : workload_(&workload),
      executor_(&executor),
      grid_(grid),
      options_(options),
      monitor_(kUninitializedExpectation, workload.slo_seconds, options.monitor) {
  expects(options_.min_observations_between_reconfigs >= 1,
          "cool-down must be at least one observation");
  reschedule(1.0);
  reconfigurations_ = 0;  // the initial deployment is not a re-configuration
}

bool AdaptiveController::observe(double makespan_seconds) {
  monitor_.observe(makespan_seconds);
  ++observations_since_reconfig_;
  return maybe_reschedule();
}

bool AdaptiveController::observe_failure() {
  monitor_.observe_failure();
  ++observations_since_reconfig_;
  return maybe_reschedule();
}

bool AdaptiveController::maybe_reschedule() {
  if (observations_since_reconfig_ < options_.min_observations_between_reconfigs) {
    return false;
  }
  if (!monitor_.should_reconfigure()) return false;

  const DriftVerdict verdict = monitor_.verdict();
  const double new_scale =
      std::max(0.05, scale_estimate_ * monitor_.estimated_drift_ratio());
  support::log_info("adaptive controller: ", to_string(verdict),
                    "; rescheduling at scale ", new_scale);
  reschedule(new_scale);
  ++reconfigurations_;
  return true;
}

void AdaptiveController::reschedule(double scale) {
  core::GraphCentricScheduler scheduler(*executor_, grid_, options_.scheduler);
  const core::ScheduleReport report =
      scheduler.schedule(workload_->workflow, workload_->slo_seconds, scale);
  scheduling_samples_ += report.result.samples();
  if (report.result.found_feasible) {
    config_ = report.result.best_config;
    scale_estimate_ = scale;
  } else if (config_.empty()) {
    // First deployment and even the base configuration misses the SLO: fall
    // back to full provisioning (the safest thing a controller can do).
    support::log_warn("adaptive controller: no feasible config; using grid maximum");
    config_ = platform::uniform_config(workload_->workflow.function_count(),
                                       grid_.max_config());
  }

  const auto expectation =
      executor_->execute_mean(workload_->workflow, config_, scale);
  monitor_.reset(expectation.failed ? workload_->slo_seconds : expectation.makespan);
  observations_since_reconfig_ = 0;
}

}  // namespace aarc::adaptive
