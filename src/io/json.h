// Minimal JSON document model, parser, and printer.
//
// Supports the JSON subset the workflow description files need: objects,
// arrays, strings (with standard escapes), finite numbers, booleans, null.
// The parser reports errors with line/column context; the printer emits
// stable, pretty or compact output.  No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace aarc::io {

/// Thrown by the parser (with position info) and by typed accessors.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json;

using JsonArray = std::vector<Json>;
/// std::map keeps key order deterministic for stable output.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object field access; throws JsonError when absent or not an object.
  const Json& at(std::string_view key) const;
  /// True when this is an object containing `key`.
  bool contains(std::string_view key) const;
  /// Field with a default when absent.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

  /// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  friend bool operator==(const Json&, const Json&) = default;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
Json parse_json(std::string_view text);

}  // namespace aarc::io
