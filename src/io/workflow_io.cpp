#include "io/workflow_io.h"

#include <fstream>
#include <sstream>

#include "perf/analytic.h"
#include "perf/composite.h"
#include "perf/profile_table.h"
#include "support/contracts.h"

namespace aarc::io {

using support::expects;

namespace {

Json analytic_to_json(const perf::AnalyticModel& model) {
  const perf::AnalyticParams& p = model.params();
  JsonObject obj;
  obj["type"] = "analytic";
  obj["io_seconds"] = p.io_seconds;
  obj["serial_seconds"] = p.serial_seconds;
  obj["parallel_seconds"] = p.parallel_seconds;
  obj["max_parallelism"] = p.max_parallelism;
  obj["working_set_mb"] = p.working_set_mb;
  obj["min_memory_mb"] = p.min_memory_mb;
  obj["pressure_coeff"] = p.pressure_coeff;
  obj["input_work_exp"] = p.input_work_exp;
  obj["input_memory_exp"] = p.input_memory_exp;
  return Json(std::move(obj));
}

std::unique_ptr<perf::PerfModel> analytic_from_json(const Json& doc) {
  perf::AnalyticParams p;
  p.io_seconds = doc.number_or("io_seconds", 0.0);
  p.serial_seconds = doc.number_or("serial_seconds", 0.0);
  p.parallel_seconds = doc.number_or("parallel_seconds", 0.0);
  p.max_parallelism = doc.number_or("max_parallelism", 1.0);
  p.working_set_mb = doc.number_or("working_set_mb", 128.0);
  p.min_memory_mb = doc.number_or("min_memory_mb", 64.0);
  p.pressure_coeff = doc.number_or("pressure_coeff", 0.0);
  p.input_work_exp = doc.number_or("input_work_exp", 1.0);
  p.input_memory_exp = doc.number_or("input_memory_exp", 0.0);
  return std::make_unique<perf::AnalyticModel>(p);
}

JsonArray numbers_to_json(const std::vector<double>& values) {
  JsonArray arr;
  arr.reserve(values.size());
  for (double v : values) arr.emplace_back(v);
  return arr;
}

std::vector<double> numbers_from_json(const Json& doc) {
  std::vector<double> out;
  for (const auto& v : doc.as_array()) out.push_back(v.as_number());
  return out;
}

Json profile_table_to_json(const perf::ProfileTableModel& model) {
  JsonObject obj;
  obj["type"] = "profile_table";
  obj["cpu_points"] = Json(numbers_to_json(model.cpu_points()));
  obj["mem_points"] = Json(numbers_to_json(model.mem_points()));
  obj["runtimes"] = Json(numbers_to_json(model.runtime_matrix()));
  obj["input_work_exp"] = model.input_work_exp();
  return Json(std::move(obj));
}

std::unique_ptr<perf::PerfModel> profile_table_from_json(const Json& doc) {
  return std::make_unique<perf::ProfileTableModel>(
      numbers_from_json(doc.at("cpu_points")), numbers_from_json(doc.at("mem_points")),
      numbers_from_json(doc.at("runtimes")), doc.number_or("input_work_exp", 1.0));
}

Json composite_to_json(const perf::CompositeModel& model) {
  JsonObject obj;
  obj["type"] = "composite";
  JsonArray stages;
  for (std::size_t i = 0; i < model.stage_count(); ++i) {
    stages.push_back(model_to_json(model.stage(i)));
  }
  obj["stages"] = Json(std::move(stages));
  return Json(std::move(obj));
}

std::unique_ptr<perf::PerfModel> composite_from_json(const Json& doc) {
  std::vector<std::unique_ptr<perf::PerfModel>> stages;
  for (const auto& stage : doc.at("stages").as_array()) {
    stages.push_back(model_from_json(stage));
  }
  return std::make_unique<perf::CompositeModel>(std::move(stages));
}

workloads::InputClass input_class_from_name(const std::string& name) {
  if (name == "light") return workloads::InputClass::Light;
  if (name == "middle") return workloads::InputClass::Middle;
  if (name == "heavy") return workloads::InputClass::Heavy;
  throw JsonError("unknown input class: " + name);
}

}  // namespace

Json model_to_json(const perf::PerfModel& model) {
  if (const auto* analytic = dynamic_cast<const perf::AnalyticModel*>(&model)) {
    return analytic_to_json(*analytic);
  }
  if (const auto* table = dynamic_cast<const perf::ProfileTableModel*>(&model)) {
    return profile_table_to_json(*table);
  }
  if (const auto* composite = dynamic_cast<const perf::CompositeModel*>(&model)) {
    return composite_to_json(*composite);
  }
  throw JsonError("cannot serialize unknown performance-model type");
}

std::unique_ptr<perf::PerfModel> model_from_json(const Json& doc) {
  const std::string type = doc.at("type").as_string();
  if (type == "analytic") return analytic_from_json(doc);
  if (type == "profile_table") return profile_table_from_json(doc);
  if (type == "composite") return composite_from_json(doc);
  throw JsonError("unknown performance-model type: " + type);
}

Json workload_to_json(const workloads::Workload& workload) {
  const platform::Workflow& wf = workload.workflow;
  JsonObject obj;
  obj["name"] = wf.name();
  obj["slo_seconds"] = workload.slo_seconds;
  obj["input_sensitive"] = workload.input_sensitive;

  JsonArray classes;
  for (const auto& entry : workload.input_classes) {
    JsonObject c;
    c["class"] = to_string(entry.input_class);
    c["scale"] = entry.scale;
    classes.push_back(Json(std::move(c)));
  }
  obj["input_classes"] = Json(std::move(classes));

  JsonArray functions;
  for (dag::NodeId id = 0; id < wf.function_count(); ++id) {
    JsonObject f;
    f["name"] = wf.function_name(id);
    f["model"] = model_to_json(wf.model(id));
    functions.push_back(Json(std::move(f)));
  }
  obj["functions"] = Json(std::move(functions));

  JsonArray edges;
  for (dag::NodeId id = 0; id < wf.function_count(); ++id) {
    for (dag::NodeId next : wf.graph().successors(id)) {
      JsonArray edge;
      edge.emplace_back(wf.function_name(id));
      edge.emplace_back(wf.function_name(next));
      edges.push_back(Json(std::move(edge)));
    }
  }
  obj["edges"] = Json(std::move(edges));
  return Json(std::move(obj));
}

workloads::Workload workload_from_json(const Json& doc) {
  platform::Workflow wf(doc.at("name").as_string());

  // Schema-level validation up front, with messages that name the offending
  // entry: duplicate function names, edges referencing unknown functions,
  // self-loops and cycles would otherwise surface as bare contract
  // violations from the DAG layer.
  std::map<std::string, std::size_t> names;
  const auto& functions = doc.at("functions").as_array();
  if (functions.empty()) {
    throw JsonError("workflow '" + wf.name() + "' declares no functions");
  }
  for (const auto& f : functions) {
    const std::string& name = f.at("name").as_string();
    if (name.empty()) {
      throw JsonError("workflow '" + wf.name() + "' has a function with an empty name");
    }
    if (!names.emplace(name, names.size()).second) {
      throw JsonError("duplicate function name '" + name + "' in workflow '" +
                      wf.name() + "'");
    }
    wf.add_function(name, model_from_json(f.at("model")));
  }

  for (const auto& e : doc.at("edges").as_array()) {
    const auto& pair = e.as_array();
    if (pair.size() != 2) throw JsonError("edges must be [from, to] pairs");
    const std::string& from = pair[0].as_string();
    const std::string& to = pair[1].as_string();
    for (const std::string& endpoint : {from, to}) {
      if (names.find(endpoint) == names.end()) {
        throw JsonError("edge [\"" + from + "\", \"" + to +
                        "\"] references unknown function '" + endpoint + "'");
      }
    }
    if (from == to) {
      throw JsonError("edge [\"" + from + "\", \"" + to +
                      "\"] is a self-loop; a function cannot depend on itself");
    }
    wf.add_edge(from, to);
  }
  if (!wf.graph().is_acyclic()) {
    throw JsonError("workflow '" + wf.name() +
                    "' has cyclic edges; dependencies must form a DAG");
  }
  wf.validate();

  workloads::Workload w(std::move(wf));
  w.slo_seconds = doc.at("slo_seconds").as_number();
  expects(w.slo_seconds > 0.0, "slo_seconds must be positive");
  w.input_sensitive = doc.bool_or("input_sensitive", false);
  if (doc.contains("input_classes")) {
    for (const auto& c : doc.at("input_classes").as_array()) {
      workloads::InputClassScale entry;
      entry.input_class = input_class_from_name(c.at("class").as_string());
      entry.scale = c.at("scale").as_number();
      expects(entry.scale > 0.0, "input class scale must be positive");
      w.input_classes.push_back(entry);
    }
  }
  return w;
}

std::string workload_to_string(const workloads::Workload& workload, int indent) {
  return workload_to_json(workload).dump(indent);
}

workloads::Workload workload_from_string(std::string_view text) {
  return workload_from_json(parse_json(text));
}

Json config_to_json(const platform::Workflow& workflow,
                    const platform::WorkflowConfig& config) {
  expects(config.size() == workflow.function_count(),
          "config must have one entry per function");
  JsonObject obj;
  obj["workflow"] = workflow.name();
  JsonArray functions;
  for (dag::NodeId id = 0; id < workflow.function_count(); ++id) {
    JsonObject f;
    f["name"] = workflow.function_name(id);
    f["vcpu"] = config[id].vcpu;
    f["memory_mb"] = config[id].memory_mb;
    functions.push_back(Json(std::move(f)));
  }
  obj["functions"] = Json(std::move(functions));
  return Json(std::move(obj));
}

platform::WorkflowConfig config_from_json(const platform::Workflow& workflow,
                                          const Json& doc) {
  platform::WorkflowConfig config(workflow.function_count());
  std::vector<bool> seen(workflow.function_count(), false);
  for (const auto& f : doc.at("functions").as_array()) {
    const dag::NodeId id = workflow.function_id(f.at("name").as_string());
    if (seen[id]) throw JsonError("duplicate function in config: " + f.at("name").as_string());
    seen[id] = true;
    config[id].vcpu = f.at("vcpu").as_number();
    config[id].memory_mb = f.at("memory_mb").as_number();
    expects(config[id].vcpu > 0.0 && config[id].memory_mb > 0.0,
            "configured allocations must be positive");
  }
  for (dag::NodeId id = 0; id < workflow.function_count(); ++id) {
    if (!seen[id]) {
      throw JsonError("config missing function: " + workflow.function_name(id));
    }
  }
  return config;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("cannot open file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_text_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw JsonError("cannot write file: " + path);
  out << contents;
  expects(out.good(), "failed writing file: " + path);
}

}  // namespace aarc::io
