#include "io/chaos_io.h"

#include <utility>

#include "support/contracts.h"

namespace aarc::io {

namespace {

using support::expects;

/// A finite number field, with the field name in every error message.
double number_field(const Json& obj, const std::string& key, bool required,
                    double fallback) {
  if (!obj.contains(key)) {
    if (required) throw JsonError("chaos incident is missing required field '" + key + "'");
    return fallback;
  }
  const Json& value = obj.at(key);
  if (!value.is_number()) {
    throw JsonError("chaos incident field '" + key + "' must be a number");
  }
  return value.as_number();
}

chaos::Incident incident_from_json(const platform::Workflow& workflow, const Json& json,
                                   std::size_t index) {
  if (!json.is_object()) {
    throw JsonError("chaos incident #" + std::to_string(index) +
                    " must be a JSON object");
  }
  chaos::Incident incident;
  if (json.contains("kind")) {
    if (!json.at("kind").is_string()) {
      throw JsonError("chaos incident field 'kind' must be a string");
    }
    incident.kind = chaos::incident_kind_from_string(json.at("kind").as_string());
  } else {
    throw JsonError("chaos incident is missing required field 'kind' "
                    "(outage | brownout | throttle_storm)");
  }
  incident.name = json.string_or("name", "");
  incident.start_seconds = number_field(json, "start_seconds", true, 0.0);
  incident.end_seconds = number_field(json, "end_seconds", true, 0.0);
  incident.ramp_seconds = number_field(json, "ramp_seconds", false, 0.0);
  incident.severity = number_field(json, "severity", false, 1.0);
  if (json.contains("targets")) {
    const Json& targets = json.at("targets");
    if (!targets.is_array()) {
      throw JsonError("chaos incident field 'targets' must be an array of "
                      "function names");
    }
    for (const Json& target : targets.as_array()) {
      if (!target.is_string()) {
        throw JsonError("chaos incident targets must be strings (function names)");
      }
      const std::string& name = target.as_string();
      incident.targets.push_back(workflow.function_id(name));
    }
  }
  incident.validate();
  return incident;
}

}  // namespace

chaos::IncidentSchedule chaos_profile_from_json(const platform::Workflow& workflow,
                                                const Json& json) {
  if (!json.is_object()) {
    throw JsonError("chaos profile must be a JSON object with an 'incidents' array");
  }
  if (!json.contains("incidents")) {
    throw JsonError("chaos profile is missing required field 'incidents'");
  }
  const Json& incidents = json.at("incidents");
  if (!incidents.is_array()) {
    throw JsonError("chaos profile field 'incidents' must be an array");
  }
  chaos::IncidentSchedule schedule;
  std::size_t index = 0;
  for (const Json& entry : incidents.as_array()) {
    schedule.add(incident_from_json(workflow, entry, index));
    ++index;
  }
  return schedule;
}

Json chaos_profile_to_json(const platform::Workflow& workflow,
                           const chaos::IncidentSchedule& schedule,
                           const std::string& profile_name) {
  JsonArray incidents;
  for (const chaos::Incident& incident : schedule.incidents()) {
    JsonObject obj;
    obj["kind"] = chaos::to_string(incident.kind);
    if (!incident.name.empty()) obj["name"] = incident.name;
    obj["start_seconds"] = incident.start_seconds;
    obj["end_seconds"] = incident.end_seconds;
    if (incident.ramp_seconds > 0.0) obj["ramp_seconds"] = incident.ramp_seconds;
    obj["severity"] = incident.severity;
    if (!incident.targets.empty()) {
      JsonArray targets;
      for (dag::NodeId id : incident.targets) {
        targets.emplace_back(workflow.function_name(id));
      }
      obj["targets"] = std::move(targets);
    }
    incidents.emplace_back(std::move(obj));
  }
  JsonObject profile;
  if (!profile_name.empty()) profile["name"] = profile_name;
  profile["incidents"] = std::move(incidents);
  return Json(std::move(profile));
}

}  // namespace aarc::io
