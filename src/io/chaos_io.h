// Chaos incident profiles as JSON (chaos/incident.h <-> io/json.h).
//
// The first concrete slice of the ROADMAP's scenario-engine item: fault
// *episodes* are data, not code.  A profile is one JSON object:
//
//   {
//     "name": "zonal-outage",            // optional profile label
//     "incidents": [
//       {
//         "kind": "outage",              // outage | brownout | throttle_storm
//         "name": "zone-a down",         // optional
//         "start_seconds": 600,
//         "end_seconds": 1200,
//         "ramp_seconds": 60,            // optional, default 0 (square step)
//         "severity": 0.95,              // optional, default 1.0, in [0, 1]
//         "targets": ["detect", "track"] // optional function names; absent or
//       }                                //   [] = platform-wide episode
//     ]
//   }
//
// Loading validates against a workflow so target names resolve to node ids;
// malformed documents throw io::JsonError and semantically invalid ones
// throw support::ContractViolation — both with messages naming the field
// and the offending value, so the CLI can surface them verbatim.
#pragma once

#include <string>

#include "chaos/incident.h"
#include "io/json.h"
#include "platform/workflow.h"

namespace aarc::io {

/// Parse a chaos profile against `workflow` (targets resolve by function
/// name).  Throws JsonError / ContractViolation with actionable messages.
chaos::IncidentSchedule chaos_profile_from_json(const platform::Workflow& workflow,
                                                const Json& json);

/// Serialize a schedule back to the profile schema (round-trip stable).
Json chaos_profile_to_json(const platform::Workflow& workflow,
                           const chaos::IncidentSchedule& schedule,
                           const std::string& profile_name = "");

}  // namespace aarc::io
