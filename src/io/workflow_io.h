// Workflow / configuration serialization.
//
// A production deployment needs workloads as data, not code: developers
// submit a workflow description (functions with calibrated performance
// models, dependency edges, SLO, input classes), and the platform hands back
// a resource configuration.  Both directions are JSON documents with a
// stable schema:
//
//   {
//     "name": "chatbot",
//     "slo_seconds": 120,
//     "input_sensitive": false,
//     "input_classes": [{"class": "light", "scale": 1.0}, ...],
//     "functions": [
//       {"name": "preprocess",
//        "model": {"type": "analytic", "io_seconds": 2.0, ...}},
//       {"name": "pipeline",
//        "model": {"type": "composite", "stages": [{...}, {...}]}},
//       {"name": "measured",
//        "model": {"type": "profile_table", "cpu_points": [...],
//                  "mem_points": [...], "runtimes": [...],
//                  "input_work_exp": 1.0}}
//     ],
//     "edges": [["preprocess", "train_nb"], ...]
//   }
//
// Configurations:
//   {"workflow": "chatbot",
//    "functions": [{"name": "preprocess", "vcpu": 1.0, "memory_mb": 512}, ...]}
#pragma once

#include <string>

#include "io/json.h"
#include "platform/resource.h"
#include "workloads/workload.h"

namespace aarc::io {

/// Serialize a workload (topology + models + SLO + input classes).
Json workload_to_json(const workloads::Workload& workload);

/// Parse a workload; throws JsonError on schema violations and
/// ContractViolation on semantic ones (cycles, bad parameters, ...).
workloads::Workload workload_from_json(const Json& doc);

/// Convenience: text round-trips.
std::string workload_to_string(const workloads::Workload& workload, int indent = 2);
workloads::Workload workload_from_string(std::string_view text);

/// Serialize a per-function configuration for the given workflow.
Json config_to_json(const platform::Workflow& workflow,
                    const platform::WorkflowConfig& config);

/// Parse a configuration against the given workflow (functions are matched
/// by name; every function must be present exactly once).
platform::WorkflowConfig config_from_json(const platform::Workflow& workflow,
                                          const Json& doc);

/// Serialize / parse a performance model (the "model" sub-document).
Json model_to_json(const perf::PerfModel& model);
std::unique_ptr<perf::PerfModel> model_from_json(const Json& doc);

/// Whole-file helpers.
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, std::string_view contents);

}  // namespace aarc::io
