#include "io/trace_io.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"
#include "support/table.h"

namespace aarc::io {

using support::expects;
using support::format_double;

std::string trace_to_csv(const search::SearchTrace& trace) {
  support::Table table({"index", "makespan", "cost", "wall_seconds", "wall_cost",
                        "failed", "feasible", "attempts", "cache_hit"});
  for (const auto& s : trace.samples()) {
    table.add_row({std::to_string(s.index),
                   std::isfinite(s.makespan) ? format_double(s.makespan, 4) : "inf",
                   std::isfinite(s.cost) ? format_double(s.cost, 4) : "inf",
                   format_double(s.wall_seconds, 4), format_double(s.wall_cost, 4),
                   s.failed ? "1" : "0", s.feasible ? "1" : "0",
                   std::to_string(s.probe_attempts), s.cache_hit ? "1" : "0"});
  }
  return table.to_csv();
}

std::string execution_to_csv(const platform::Workflow& workflow,
                             const platform::ExecutionResult& result) {
  expects(result.invocations.size() == workflow.function_count(),
          "result does not match the workflow");
  support::Table table({"function", "start", "runtime", "finish", "cost", "oom"});
  for (const auto& inv : result.invocations) {
    table.add_row({workflow.function_name(inv.node),
                   std::isfinite(inv.start) ? format_double(inv.start, 4) : "inf",
                   std::isfinite(inv.runtime) ? format_double(inv.runtime, 4) : "inf",
                   std::isfinite(inv.finish) ? format_double(inv.finish, 4) : "inf",
                   std::isfinite(inv.cost) ? format_double(inv.cost, 4) : "inf",
                   inv.oom ? "1" : "0"});
  }
  return table.to_csv();
}

std::string execution_gantt(const platform::Workflow& workflow,
                            const platform::ExecutionResult& result, std::size_t width) {
  expects(result.invocations.size() == workflow.function_count(),
          "result does not match the workflow");
  expects(width >= 10, "gantt width must be at least 10 columns");

  const double horizon = result.observed_wall_seconds();
  std::size_t name_width = 0;
  for (dag::NodeId id = 0; id < workflow.function_count(); ++id) {
    name_width = std::max(name_width, workflow.function_name(id).size());
  }

  std::string out;
  for (const auto& inv : result.invocations) {
    const std::string& name = workflow.function_name(inv.node);
    out += name;
    out.append(name_width - name.size(), ' ');
    out += " |";
    if (inv.oom || !std::isfinite(inv.finish)) {
      out += " OOM";
    } else if (horizon <= 0.0) {
      out += std::string(width, '#');
    } else {
      const auto begin = static_cast<std::size_t>(inv.start / horizon *
                                                  static_cast<double>(width));
      auto end = static_cast<std::size_t>(inv.finish / horizon *
                                          static_cast<double>(width));
      end = std::max(end, begin + 1);
      end = std::min(end, width);
      out.append(begin, ' ');
      out.append(end - begin, '#');
      out.append(width - end, ' ');
      out += "| ";
      out += format_double(inv.start, 1) + "-" + format_double(inv.finish, 1) + "s";
    }
    out += '\n';
  }
  return out;
}

std::string serving_timeline_to_csv(const serving::StreamingReport& report) {
  support::Table table({"index", "arrival", "completion", "latency", "cost",
                        "cold_starts", "invocations", "retries", "timeouts", "failed",
                        "rejected"});
  for (const auto& r : report.outcomes) {
    table.add_row({std::to_string(r.index), format_double(r.arrival, 4),
                   format_double(r.completion, 4), format_double(r.latency(), 4),
                   format_double(r.cost, 6), std::to_string(r.cold_starts),
                   std::to_string(r.invocations), std::to_string(r.retries),
                   std::to_string(r.timeouts), r.failed ? "1" : "0",
                   r.rejected ? "1" : "0"});
  }
  return table.to_csv();
}

std::string serving_windows_to_csv(const serving::StreamingReport& report) {
  support::Table table({"start", "width", "arrivals", "completed", "failed",
                        "rejected", "slo_violations", "throughput_rps", "mean_latency",
                        "max_latency", "slo_attainment"});
  for (const auto& w : report.windows) {
    table.add_row({format_double(w.start, 4), format_double(w.width, 4),
                   std::to_string(w.arrivals), std::to_string(w.completed),
                   std::to_string(w.failed), std::to_string(w.rejected),
                   std::to_string(w.slo_violations), format_double(w.throughput_rps(), 4),
                   format_double(w.mean_latency(), 4), format_double(w.max_latency, 4),
                   format_double(w.slo_attainment(), 4)});
  }
  return table.to_csv();
}

std::vector<serving::Arrival> arrival_trace_from_json(const Json& json) {
  expects(json.is_object() && json.contains("arrivals"),
          "arrival trace needs a top-level \"arrivals\" array");
  const JsonArray& entries = json.at("arrivals").as_array();
  std::vector<serving::Arrival> out;
  out.reserve(entries.size());
  for (const Json& entry : entries) {
    serving::Arrival a;
    a.time = entry.at("t").as_number();
    a.input_scale = entry.number_or("scale", 1.0);
    expects(a.time >= 0.0, "arrival trace times must be non-negative");
    expects(a.input_scale > 0.0, "arrival trace scales must be positive");
    expects(out.empty() || out.back().time <= a.time,
            "arrival trace must be sorted by time");
    out.push_back(a);
  }
  return out;
}

Json arrival_trace_to_json(const std::vector<serving::Arrival>& arrivals) {
  JsonArray entries;
  entries.reserve(arrivals.size());
  for (const auto& a : arrivals) {
    JsonObject entry;
    entry["t"] = Json(a.time);
    entry["scale"] = Json(a.input_scale);
    entries.push_back(Json(std::move(entry)));
  }
  JsonObject root;
  root["arrivals"] = Json(std::move(entries));
  return Json(std::move(root));
}

}  // namespace aarc::io
