#include "io/trace_io.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"
#include "support/table.h"

namespace aarc::io {

using support::expects;
using support::format_double;

std::string trace_to_csv(const search::SearchTrace& trace) {
  support::Table table({"index", "makespan", "cost", "wall_seconds", "wall_cost",
                        "failed", "feasible", "attempts", "cache_hit"});
  for (const auto& s : trace.samples()) {
    table.add_row({std::to_string(s.index),
                   std::isfinite(s.makespan) ? format_double(s.makespan, 4) : "inf",
                   std::isfinite(s.cost) ? format_double(s.cost, 4) : "inf",
                   format_double(s.wall_seconds, 4), format_double(s.wall_cost, 4),
                   s.failed ? "1" : "0", s.feasible ? "1" : "0",
                   std::to_string(s.probe_attempts), s.cache_hit ? "1" : "0"});
  }
  return table.to_csv();
}

std::string execution_to_csv(const platform::Workflow& workflow,
                             const platform::ExecutionResult& result) {
  expects(result.invocations.size() == workflow.function_count(),
          "result does not match the workflow");
  support::Table table({"function", "start", "runtime", "finish", "cost", "oom"});
  for (const auto& inv : result.invocations) {
    table.add_row({workflow.function_name(inv.node),
                   std::isfinite(inv.start) ? format_double(inv.start, 4) : "inf",
                   std::isfinite(inv.runtime) ? format_double(inv.runtime, 4) : "inf",
                   std::isfinite(inv.finish) ? format_double(inv.finish, 4) : "inf",
                   std::isfinite(inv.cost) ? format_double(inv.cost, 4) : "inf",
                   inv.oom ? "1" : "0"});
  }
  return table.to_csv();
}

std::string execution_gantt(const platform::Workflow& workflow,
                            const platform::ExecutionResult& result, std::size_t width) {
  expects(result.invocations.size() == workflow.function_count(),
          "result does not match the workflow");
  expects(width >= 10, "gantt width must be at least 10 columns");

  const double horizon = result.observed_wall_seconds();
  std::size_t name_width = 0;
  for (dag::NodeId id = 0; id < workflow.function_count(); ++id) {
    name_width = std::max(name_width, workflow.function_name(id).size());
  }

  std::string out;
  for (const auto& inv : result.invocations) {
    const std::string& name = workflow.function_name(inv.node);
    out += name;
    out.append(name_width - name.size(), ' ');
    out += " |";
    if (inv.oom || !std::isfinite(inv.finish)) {
      out += " OOM";
    } else if (horizon <= 0.0) {
      out += std::string(width, '#');
    } else {
      const auto begin = static_cast<std::size_t>(inv.start / horizon *
                                                  static_cast<double>(width));
      auto end = static_cast<std::size_t>(inv.finish / horizon *
                                          static_cast<double>(width));
      end = std::max(end, begin + 1);
      end = std::min(end, width);
      out.append(begin, ' ');
      out.append(end - begin, '#');
      out.append(width - end, ' ');
      out += "| ";
      out += format_double(inv.start, 1) + "-" + format_double(inv.finish, 1) + "s";
    }
    out += '\n';
  }
  return out;
}

}  // namespace aarc::io
