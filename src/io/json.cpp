#include "io/json.h"

#include <cctype>
#include <cmath>
#include <sstream>

namespace aarc::io {

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw JsonError(std::string("JSON value is not ") + expected);
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("a boolean");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(value_);
}

JsonArray& Json::as_array() {
  if (!is_array()) type_error("an array");
  return std::get<JsonArray>(value_);
}

JsonObject& Json::as_object() {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(value_);
}

const Json& Json::at(std::string_view key) const {
  const auto& obj = as_object();
  const auto it = obj.find(std::string(key));
  if (it == obj.end()) throw JsonError("missing JSON field: " + std::string(key));
  return it->second;
}

bool Json::contains(std::string_view key) const {
  return is_object() && as_object().count(std::string(key)) > 0;
}

double Json::number_or(std::string_view key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  return contains(key) ? at(key).as_string() : std::move(fallback);
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
    return;
  }
  std::ostringstream os;
  os.precision(17);
  os << d;
  out += os.str();
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_impl(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    if (!std::isfinite(as_number())) throw JsonError("cannot serialize non-finite number");
    dump_number(out, as_number());
  } else if (is_string()) {
    dump_string(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out += ',';
      newline_indent(out, indent, depth + 1);
      arr[i].dump_impl(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(out, key);
      out += indent > 0 ? ": " : ":";
      value.dump_impl(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << ", column " << column << ": " << message;
    throw JsonError(os.str());
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char ch = peek();
    ++pos_;
    return ch;
  }

  void expect(char ch) {
    if (advance() != ch) {
      --pos_;
      fail(std::string("expected '") + ch + "'");
    }
  }

  bool consume_if(char ch) {
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_keyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      fail("invalid literal");
    }
    pos_ += keyword.size();
  }

  Json parse_value() {
    // Nesting cap: a hostile document of thousands of open brackets must
    // fail with a JsonError, not overflow the parse stack.
    if (depth_ >= kMaxDepth) fail("document nesting exceeds the depth limit");
    ++depth_;
    Json value = parse_value_inner();
    --depth_;
    return value;
  }

  Json parse_value_inner() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        expect_keyword("true");
        return Json(true);
      case 'f':
        expect_keyword("false");
        return Json(false);
      case 'n':
        expect_keyword("null");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_whitespace();
    if (consume_if('}')) return Json(std::move(obj));
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("object keys must be strings");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      Json value = parse_value();
      if (!obj.emplace(std::move(key), std::move(value)).second) {
        fail("duplicate object key");
      }
      skip_whitespace();
      if (consume_if(',')) continue;
      expect('}');
      break;
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_whitespace();
    if (consume_if(']')) return Json(std::move(arr));
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      if (consume_if(',')) continue;
      expect(']');
      break;
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char ch = advance();
      if (ch == '"') break;
      if (ch == '\\') {
        const char esc = advance();
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char hex = advance();
              code <<= 4;
              if (hex >= '0' && hex <= '9') {
                code |= static_cast<unsigned>(hex - '0');
              } else if (hex >= 'a' && hex <= 'f') {
                code |= static_cast<unsigned>(hex - 'a' + 10);
              } else if (hex >= 'A' && hex <= 'F') {
                code |= static_cast<unsigned>(hex - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            // Encode the (BMP) code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += ch;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume_if('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t consumed = 0;
      const double value = std::stod(token, &consumed);
      if (consumed != token.size()) throw std::invalid_argument(token);
      return Json(value);
    } catch (const std::exception&) {
      pos_ = start;
      fail("invalid number: " + token);
    }
  }

  static constexpr std::size_t kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Json parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace aarc::io
