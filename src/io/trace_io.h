// Search-trace and execution-timeline export.
//
// The bench harness prints markdown; downstream analysis wants machine
// formats.  This module renders:
//   * a SearchTrace as CSV (one row per sample, the exact series behind
//     Figs. 3, 6 and 7);
//   * an ExecutionResult as CSV (one row per invocation) and as a textual
//     Gantt chart for quick terminal inspection of workflow schedules;
//   * a serving StreamingReport as two CSVs — the per-request timeline
//     (needs EngineOptions::retain_outcomes) and the windowed
//     throughput/SLO-attainment series — plus the JSON arrival-trace
//     format replayed by TraceReplayProcess.
#pragma once

#include <string>

#include "io/json.h"
#include "platform/executor.h"
#include "search/trace.h"
#include "serving/arrivals.h"
#include "serving/report.h"

namespace aarc::io {

/// CSV with columns: index, makespan, cost, wall_seconds, wall_cost,
/// failed, feasible, attempts (platform executions the probe consumed;
/// > 1 when the evaluator re-sampled a failed/outlier probe).
std::string trace_to_csv(const search::SearchTrace& trace);

/// CSV with columns: function, start, runtime, finish, cost, oom.
std::string execution_to_csv(const platform::Workflow& workflow,
                             const platform::ExecutionResult& result);

/// Textual Gantt chart of one execution (fixed `width` characters across the
/// makespan).  OOM rows are marked.  Requires a successful-or-partial run.
std::string execution_gantt(const platform::Workflow& workflow,
                            const platform::ExecutionResult& result,
                            std::size_t width = 60);

/// Per-request serving timeline as CSV with columns: index, arrival,
/// completion, latency, cost, cold_starts, invocations, retries, timeouts,
/// failed, rejected.  Rows come from report.outcomes (emission order), so
/// the run must have been made with EngineOptions::retain_outcomes.
std::string serving_timeline_to_csv(const serving::StreamingReport& report);

/// Windowed serving series as CSV with columns: start, width, arrivals,
/// completed, failed, rejected, slo_violations, throughput_rps,
/// mean_latency, max_latency, slo_attainment.  One row per window
/// (EngineOptions::window_seconds), contiguous from t=0.
std::string serving_windows_to_csv(const serving::StreamingReport& report);

/// JSON arrival trace (doc/SERVING.md):
///   {"arrivals": [{"t": <seconds>, "scale": <input scale, default 1>}, ...]}
/// Arrivals must be sorted by "t".  The inverse of arrival_trace_to_json.
std::vector<serving::Arrival> arrival_trace_from_json(const Json& json);
Json arrival_trace_to_json(const std::vector<serving::Arrival>& arrivals);

}  // namespace aarc::io
