// Search-trace and execution-timeline export.
//
// The bench harness prints markdown; downstream analysis wants machine
// formats.  This module renders:
//   * a SearchTrace as CSV (one row per sample, the exact series behind
//     Figs. 3, 6 and 7);
//   * an ExecutionResult as CSV (one row per invocation) and as a textual
//     Gantt chart for quick terminal inspection of workflow schedules.
#pragma once

#include <string>

#include "platform/executor.h"
#include "search/trace.h"

namespace aarc::io {

/// CSV with columns: index, makespan, cost, wall_seconds, wall_cost,
/// failed, feasible, attempts (platform executions the probe consumed;
/// > 1 when the evaluator re-sampled a failed/outlier probe).
std::string trace_to_csv(const search::SearchTrace& trace);

/// CSV with columns: function, start, runtime, finish, cost, oom.
std::string execution_to_csv(const platform::Workflow& workflow,
                             const platform::ExecutionResult& result);

/// Textual Gantt chart of one execution (fixed `width` characters across the
/// makespan).  OOM rows are marked.  Requires a successful-or-partial run.
std::string execution_gantt(const platform::Workflow& workflow,
                            const platform::ExecutionResult& result,
                            std::size_t width = 60);

}  // namespace aarc::io
