// Lightweight precondition / postcondition / invariant checks in the spirit of
// the C++ Core Guidelines' Expects()/Ensures() (I.6, I.8).  Violations throw,
// so tests can assert on them and long experiment runs fail loudly instead of
// silently producing garbage.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace aarc::support {

/// Thrown when a contract (precondition, postcondition, or invariant) fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void fail_contract(std::string_view kind, std::string_view message,
                                std::string_view file, int line);
}  // namespace detail

/// Check a precondition; throws ContractViolation when `condition` is false.
inline void expects(bool condition, std::string_view message, std::string_view file = {},
                    int line = 0) {
  if (!condition) detail::fail_contract("precondition", message, file, line);
}

/// Check a postcondition; throws ContractViolation when `condition` is false.
inline void ensures(bool condition, std::string_view message, std::string_view file = {},
                    int line = 0) {
  if (!condition) detail::fail_contract("postcondition", message, file, line);
}

/// Check an internal invariant; throws ContractViolation when false.
inline void invariant(bool condition, std::string_view message, std::string_view file = {},
                      int line = 0) {
  if (!condition) detail::fail_contract("invariant", message, file, line);
}

}  // namespace aarc::support
