#include "support/grid.h"

#include <cmath>

#include "support/contracts.h"

namespace aarc::support {

namespace {
constexpr double kTolerance = 1e-6;
}

ValueGrid::ValueGrid(double min, double max, double step) : min_(min), max_(max), step_(step) {
  expects(step > 0.0, "ValueGrid step must be positive");
  expects(max >= min, "ValueGrid max must be >= min");
  const double steps = (max - min) / step;
  const double rounded = std::round(steps);
  expects(std::abs(steps - rounded) < kTolerance,
          "ValueGrid max must be min + k*step for integral k");
  size_ = static_cast<std::size_t>(rounded) + 1;
}

double ValueGrid::value(std::size_t i) const {
  expects(i < size_, "ValueGrid::value index out of range");
  // Compute from the ends to avoid drift and guarantee value(size-1) == max.
  if (i + 1 == size_) return max_;
  return min_ + static_cast<double>(i) * step_;
}

std::size_t ValueGrid::index_of(double v) const {
  if (v <= min_) return 0;
  if (v >= max_) return size_ - 1;
  const double idx = std::round((v - min_) / step_);
  auto i = static_cast<std::size_t>(idx);
  if (i >= size_) i = size_ - 1;
  return i;
}

double ValueGrid::snap(double v) const { return value(index_of(v)); }

double ValueGrid::clamp(double v) const {
  if (v < min_) return min_;
  if (v > max_) return max_;
  return v;
}

bool ValueGrid::contains(double v) const {
  if (v < min_ - kTolerance || v > max_ + kTolerance) return false;
  return std::abs(snap(v) - v) < kTolerance;
}

double ValueGrid::step_down(double v, std::size_t units) const {
  const std::size_t i = index_of(v);
  return value(i >= units ? i - units : 0);
}

double ValueGrid::step_up(double v, std::size_t units) const {
  const std::size_t i = index_of(v);
  const std::size_t j = i + units;
  return value(j < size_ ? j : size_ - 1);
}

std::vector<double> ValueGrid::values() const {
  std::vector<double> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(value(i));
  return out;
}

}  // namespace aarc::support
