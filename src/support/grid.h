// Discretized value grids.
//
// The paper's search space is discrete: memory in 64 MB increments from
// 128 MB to 10240 MB, vCPU from 0.1 to 10 in 0.1 steps (Section IV-A).  All
// three algorithms (AARC, BO, MAFF) operate on such grids; this class is the
// single source of truth for snapping, clamping, and indexing.
#pragma once

#include <cstddef>
#include <vector>

namespace aarc::support {

/// An arithmetic grid {min, min+step, ..., max}.  `max` must be reachable
/// from `min` by an integral number of steps (within floating tolerance);
/// the constructor enforces this.
class ValueGrid {
 public:
  ValueGrid(double min, double max, double step);

  double min() const { return min_; }
  double max() const { return max_; }
  double step() const { return step_; }
  std::size_t size() const { return size_; }

  /// Value at grid index i.  Requires i < size().
  double value(std::size_t i) const;

  /// Index of the grid point nearest to v (clamped to the grid range).
  std::size_t index_of(double v) const;

  /// Snap v to the nearest grid point (clamped to the range).
  double snap(double v) const;

  /// Clamp v into [min, max] without snapping.
  double clamp(double v) const;

  /// True when v coincides with a grid point (within tolerance).
  bool contains(double v) const;

  /// Move `units` grid steps down from v (after snapping); clamps at min().
  double step_down(double v, std::size_t units) const;

  /// Move `units` grid steps up from v (after snapping); clamps at max().
  double step_up(double v, std::size_t units) const;

  /// All grid values, materialized (useful for sweeps and BO candidates).
  std::vector<double> values() const;

 private:
  double min_;
  double max_;
  double step_;
  std::size_t size_;
};

}  // namespace aarc::support
