// Minimal tabular output: markdown tables for terminal reports (the bench
// harness prints every paper table/figure as one of these) and CSV for
// machine-readable export.
#pragma once

#include <string>
#include <vector>

namespace aarc::support {

/// A simple rectangular table builder.  All rows must have the same number of
/// cells as the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

  /// Render as a GitHub-flavoured markdown table with aligned columns.
  std::string to_markdown() const;

  /// Render as RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, embedded quotes doubled).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (no trailing locale surprises).
std::string format_double(double v, int precision = 2);

/// Format like the paper's Table II cost column: value/1000 with one decimal
/// and a trailing 'k' (e.g. 2390.9k).
std::string format_kilo(double v, int precision = 1);

/// Format "mean ± std" with the given precision.
std::string format_mean_std(double mean, double std, int precision = 1);

/// Format a percentage with sign, e.g. "-49.6%".
std::string format_percent(double fraction, int precision = 1);

}  // namespace aarc::support
