#include "support/log.h"

#include <atomic>
#include <iostream>

namespace aarc::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view message) {
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::cerr << line;
}

}  // namespace aarc::support
