// A small fixed-size worker pool for deterministic fan-out.
//
// The pool exists for one pattern: run N independent tasks, indexed 0..N-1,
// across W persistent workers and block until all are done.  Each task is
// handed its item index and the id of the worker running it, so callers can
// route work to per-worker resources (e.g. per-thread Executor clones in
// search::Evaluator) without any locking of their own.
//
// Determinism contract: the pool never reorders results — callers index a
// pre-sized output slot by item, so the outcome of a parallel_for is a pure
// function of the task list, independent of scheduling.  Workers pull items
// from an atomic counter (work stealing by increment), which balances load
// without a queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

namespace aarc::support {

class ThreadPool {
 public:
  /// Spawn `workers` persistent threads (>= 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Run fn(item, worker) for every item in [0, count) across the pool and
  /// block until all items completed.  `worker` is in [0, size()).  The first
  /// exception thrown by any task is rethrown here after the batch drains;
  /// remaining items still run (tasks must be exception-safe individually).
  /// Not reentrant: only one parallel_for may be active at a time.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t item, std::size_t worker)>& fn);

  /// Hardware concurrency with a sane floor (>= 1).
  static std::size_t default_workers();

 private:
  void worker_loop(std::size_t worker);

  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t next_item_ = 0;    ///< next unclaimed item (under mutex_)
  std::size_t in_flight_ = 0;    ///< items claimed but not finished
  std::uint64_t generation_ = 0; ///< bumps once per parallel_for
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace aarc::support
