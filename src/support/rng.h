// Deterministic, seed-splittable random number generation.
//
// Every stochastic component in the simulator (invocation noise, cold starts,
// synthetic DAG generation, Latin-hypercube sampling, ...) derives its stream
// from an explicit 64-bit seed so that experiments are reproducible bit-for-bit
// across runs and across machines.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace aarc::support {

/// SplitMix64 — used both as a cheap standalone generator and to derive
/// decorrelated child seeds from a parent seed (seed "splitting").
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Derive a child seed from (parent seed, stream id).  Distinct stream ids
/// yield decorrelated child streams; the derivation is pure.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream);

/// A seeded random source wrapping a Mersenne Twister with convenience
/// distributions used throughout the project.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this generator was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Multiplicative lognormal factor with E[x] == 1 for the given sigma.
  /// (mu is set to -sigma^2/2 so the mean of the factor is exactly one.)
  double lognormal_unit_mean(double sigma);

  /// Bernoulli draw with probability p in [0, 1].
  bool bernoulli(double p);

  /// Pick a uniformly random index in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Spawn a decorrelated child generator for the given stream id.
  Rng split(std::uint64_t stream) const;

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace aarc::support
