#include "support/contracts.h"

#include <sstream>

namespace aarc::support::detail {

void fail_contract(std::string_view kind, std::string_view message, std::string_view file,
                   int line) {
  std::ostringstream os;
  os << kind << " violated: " << message;
  if (!file.empty()) os << " [" << file << ":" << line << "]";
  throw ContractViolation(os.str());
}

}  // namespace aarc::support::detail
