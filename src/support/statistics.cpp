#include "support/statistics.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"

namespace aarc::support {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  expects(count_ > 0, "Accumulator::min on empty accumulator");
  return min_;
}

double Accumulator::max() const {
  expects(count_ > 0, "Accumulator::max on empty accumulator");
  return max_;
}

Summary Accumulator::summary() const {
  Summary s;
  s.count = count_;
  s.mean = mean_;
  s.stddev = stddev();
  s.min = count_ > 0 ? min_ : 0.0;
  s.max = count_ > 0 ? max_ : 0.0;
  s.sum = sum_;
  return s;
}

Summary summarize(std::span<const double> values) {
  Accumulator acc;
  for (double v : values) acc.add(v);
  return acc.summary();
}

double mean(std::span<const double> values) { return summarize(values).mean; }

double stddev(std::span<const double> values) { return summarize(values).stddev; }

double percentile(std::span<const double> values, double p) {
  expects(!values.empty(), "percentile of empty sample");
  expects(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_abs_delta(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    total += std::abs(values[i] - values[i - 1]);
  }
  return total / static_cast<double>(values.size() - 1);
}

double fraction_increases(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  std::size_t increases = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[i - 1]) ++increases;
  }
  return static_cast<double>(increases) / static_cast<double>(values.size() - 1);
}

std::vector<double> running_min(std::span<const double> values) {
  std::vector<double> out;
  out.reserve(values.size());
  double best = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    best = i == 0 ? values[i] : std::min(best, values[i]);
    out.push_back(best);
  }
  return out;
}

std::vector<double> running_max(std::span<const double> values) {
  std::vector<double> out;
  out.reserve(values.size());
  double best = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    best = i == 0 ? values[i] : std::max(best, values[i]);
    out.push_back(best);
  }
  return out;
}

}  // namespace aarc::support
