#include "support/statistics.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"

namespace aarc::support {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  expects(count_ > 0, "Accumulator::min on empty accumulator");
  return min_;
}

double Accumulator::max() const {
  expects(count_ > 0, "Accumulator::max on empty accumulator");
  return max_;
}

Summary Accumulator::summary() const {
  Summary s;
  s.count = count_;
  s.mean = mean_;
  s.stddev = stddev();
  s.min = count_ > 0 ? min_ : 0.0;
  s.max = count_ > 0 ? max_ : 0.0;
  s.sum = sum_;
  return s;
}

QuantileSketch::QuantileSketch(double min_value, double max_value, double growth)
    : min_value_(min_value),
      log_min_(std::log(min_value)),
      log_growth_(std::log(growth)) {
  expects(min_value > 0.0 && max_value > min_value, "sketch range must be ordered");
  expects(growth > 1.0, "sketch growth must exceed 1");
  bucket_count_ = static_cast<std::size_t>(
                      std::ceil((std::log(max_value) - log_min_) / log_growth_)) +
                  1;
  buckets_.assign(bucket_count_ + 1, 0);  // + overflow
}

std::size_t QuantileSketch::bucket_of(double value) const {
  if (!(value > min_value_)) return 0;
  const auto i =
      static_cast<std::size_t>(std::floor((std::log(value) - log_min_) / log_growth_));
  return std::min(i + 1, bucket_count_);  // bucket 0 is [0, min_value_]
}

double QuantileSketch::bucket_lower(std::size_t i) const {
  if (i == 0) return 0.0;
  return std::exp(log_min_ + static_cast<double>(i - 1) * log_growth_);
}

void QuantileSketch::add(double value) {
  expects(value >= 0.0, "QuantileSketch values must be non-negative");
  ++buckets_[bucket_of(value)];
  ++count_;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  expects(buckets_.size() == other.buckets_.size() && min_value_ == other.min_value_ &&
              log_growth_ == other.log_growth_,
          "QuantileSketch::merge requires identical bucket layouts");
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
}

double QuantileSketch::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[i];
    if (static_cast<double>(seen) < rank) continue;
    if (i >= bucket_count_) return bucket_lower(bucket_count_);  // overflow
    const double lo = bucket_lower(i);
    const double hi = bucket_lower(i + 1);
    const double frac =
        std::clamp((rank - before) / static_cast<double>(buckets_[i]), 0.0, 1.0);
    // Geometric interpolation matches the bucket spacing.
    return lo <= 0.0 ? hi * frac : lo * std::exp(frac * std::log(hi / lo));
  }
  return bucket_lower(bucket_count_);
}

Summary summarize(std::span<const double> values) {
  Accumulator acc;
  for (double v : values) acc.add(v);
  return acc.summary();
}

double mean(std::span<const double> values) { return summarize(values).mean; }

double stddev(std::span<const double> values) { return summarize(values).stddev; }

double percentile(std::span<const double> values, double p) {
  expects(!values.empty(), "percentile of empty sample");
  expects(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double normal_quantile(double p) {
  expects(p > 0.0 && p < 1.0, "normal_quantile p must be in (0, 1)");
  // Acklam's rational approximation: central region plus two tail regions,
  // each a ratio of degree-5 polynomials in an appropriate variable.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double mean_abs_delta(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    total += std::abs(values[i] - values[i - 1]);
  }
  return total / static_cast<double>(values.size() - 1);
}

double fraction_increases(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  std::size_t increases = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[i - 1]) ++increases;
  }
  return static_cast<double>(increases) / static_cast<double>(values.size() - 1);
}

std::vector<double> running_min(std::span<const double> values) {
  std::vector<double> out;
  out.reserve(values.size());
  double best = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    best = i == 0 ? values[i] : std::min(best, values[i]);
    out.push_back(best);
  }
  return out;
}

std::vector<double> running_max(std::span<const double> values) {
  std::vector<double> out;
  out.reserve(values.size());
  double best = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    best = i == 0 ? values[i] : std::max(best, values[i]);
    out.push_back(best);
  }
  return out;
}

}  // namespace aarc::support
