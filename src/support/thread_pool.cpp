#include "support/thread_pool.h"

#include "support/contracts.h"

namespace aarc::support {

ThreadPool::ThreadPool(std::size_t workers) {
  expects(workers >= 1, "thread pool needs at least one worker");
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_workers_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  expects(job_ == nullptr, "parallel_for is not reentrant");
  job_ = &fn;
  job_count_ = count;
  next_item_ = 0;
  in_flight_ = 0;
  first_error_ = nullptr;
  ++generation_;
  wake_workers_.notify_all();
  batch_done_.wait(lock, [this] { return next_item_ >= job_count_ && in_flight_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_workers_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
    if (stopping_) return;
    seen_generation = generation_;
    while (next_item_ < job_count_) {
      const std::size_t item = next_item_++;
      ++in_flight_;
      const auto* fn = job_;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*fn)(item, worker);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
    }
    if (in_flight_ == 0) batch_done_.notify_one();
  }
}

std::size_t ThreadPool::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace aarc::support
