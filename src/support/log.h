// Minimal leveled logger.  Experiments are long-running; the harness raises
// the level to Info to narrate progress, while tests keep the default Warn so
// output stays clean.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace aarc::support {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at the given level (to stderr, single write, prefixed).
void log_message(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_message(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_message(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_message(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_message(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace aarc::support
