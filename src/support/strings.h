// Small string utilities (join/split/trim) shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aarc::support {

/// Join the elements with the separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Split on a single-character separator; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view text);

}  // namespace aarc::support
