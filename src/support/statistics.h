// Descriptive statistics used by the profiler, the search traces, and the
// experiment harness (mean +/- std rows of Table II, fluctuation metrics of
// Fig. 3, best-so-far series of Figs. 6/7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace aarc::support {

/// Summary of a sample: count, mean, standard deviation (sample, n-1),
/// min/max, and sum.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Online (Welford) accumulator; numerically stable single-pass mean/variance.
class Accumulator {
 public:
  void add(double x);
  /// Merge another accumulator into this one (parallel-safe reduction).
  void merge(const Accumulator& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  Summary summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Streaming quantile estimator over non-negative values, O(1) memory.
///
/// Values land in geometrically spaced buckets between `min_value` and
/// `max_value` (each bucket spans a factor of `growth`), so the relative
/// error of a reported quantile is bounded by `growth - 1` (~2% at the
/// default).  Values below `min_value` collapse into the first bucket,
/// values above `max_value` into one overflow bucket whose quantiles
/// report `max_value`.  Built for million-request serving runs where
/// retaining every latency for support::percentile would not be bounded.
class QuantileSketch {
 public:
  explicit QuantileSketch(double min_value = 1e-3, double max_value = 3.6e6,
                          double growth = 1.02);

  void add(double value);
  /// Merge another sketch (must share min/max/growth).
  void merge(const QuantileSketch& other);

  std::size_t count() const { return count_; }
  /// q in [0, 1]; 0 when empty.  Interpolates geometrically in-bucket.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  std::size_t bucket_of(double value) const;
  double bucket_lower(std::size_t i) const;

  double min_value_;
  double log_min_;
  double log_growth_;
  std::size_t bucket_count_;  ///< regular buckets; one overflow bucket appended
  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
};

/// One-shot summary of a span of values.
Summary summarize(std::span<const double> values);

double mean(std::span<const double> values);
double stddev(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100].  Requires non-empty input.
double percentile(std::span<const double> values, double p);

/// Inverse standard-normal CDF (probit), p in (0, 1).  Acklam's rational
/// approximation, |relative error| < 1.15e-9 — plenty for the one-sided
/// confidence bounds of search::SloBound (mean-metric verdicts).
double normal_quantile(double p);

/// Mean absolute difference between consecutive values (the paper's Fig. 3
/// "average fluctuation amplitude").  Zero for fewer than two values.
double mean_abs_delta(std::span<const double> values);

/// Fraction of consecutive deltas that are strictly positive (the paper's
/// "over half of the changes are increases").  Zero for fewer than two values.
double fraction_increases(std::span<const double> values);

/// Running minimum of a series (best-so-far curve for cost plots).
std::vector<double> running_min(std::span<const double> values);

/// Running maximum of a series.
std::vector<double> running_max(std::span<const double> values);

}  // namespace aarc::support
