#include "support/strings.h"

#include <cctype>

namespace aarc::support {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& ch : out) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return out;
}

}  // namespace aarc::support
