#include "support/table.h"

#include <algorithm>
#include <sstream>

#include "support/contracts.h"

namespace aarc::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  expects(!header_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  expects(row.size() == header_.size(), "Table row width must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << ' ';
    for (std::size_t i = 0; i < widths[c]; ++i) os << '-';
    os << " |";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  const bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string format_kilo(double v, int precision) {
  return format_double(v / 1000.0, precision) + "k";
}

std::string format_mean_std(double mean, double std, int precision) {
  return format_double(mean, precision) + " ± " + format_double(std, precision);
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

}  // namespace aarc::support
