#include "support/rng.h"

#include <cmath>

#include "support/contracts.h"

namespace aarc::support {

std::uint64_t SplitMix64::next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) {
  SplitMix64 mix(parent ^ (0xA0761D6478BD642FULL + stream * 0xE7037ED1A0B428DBULL));
  // Burn one output so that stream 0 does not reproduce the parent sequence.
  (void)mix.next();
  return mix.next();
}

double Rng::uniform(double lo, double hi) {
  expects(lo <= hi, "Rng::uniform requires lo <= hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  expects(lo <= hi, "Rng::uniform_int requires lo <= hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::lognormal_unit_mean(double sigma) {
  expects(sigma >= 0.0, "lognormal sigma must be non-negative");
  if (sigma == 0.0) return 1.0;
  const double mu = -0.5 * sigma * sigma;
  std::lognormal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  expects(p >= 0.0 && p <= 1.0, "bernoulli probability must be in [0, 1]");
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  expects(n > 0, "Rng::index requires a non-empty range");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::uniform_int_distribution<std::size_t> dist(0, i - 1);
    std::swap(perm[i - 1], perm[dist(engine_)]);
  }
  return perm;
}

Rng Rng::split(std::uint64_t stream) const { return Rng(derive_seed(seed_, stream)); }

}  // namespace aarc::support
