// Robustness sweep: AARC vs BO vs MAFF across a generated scenario corpus.
//
// The paper's evaluation is three hand-written workflows; the sweep asks the
// robustness question — does the win hold on workloads nobody hand-wrote? —
// by running all three methods on every scenario of a seeded corpus,
// validating accepted configurations with noisy executions, and auditing the
// invariants (scenario/audit.h) as it goes.  Everything is deterministic
// under (seed, scenario_count): reruns produce byte-identical JSON.
//
// Win rule: AARC wins a scenario iff it found a feasible configuration and,
// for each baseline, the baseline either failed to or AARC's validated mean
// cost is within `win_cost_slack` of the baseline's.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "io/json.h"
#include "scenario/audit.h"
#include "scenario/generator.h"

namespace aarc::scenario {

struct SweepOptions {
  std::size_t scenario_count = 100;
  std::uint64_t seed = 42;
  GeneratorOptions generator{};
  /// Evaluator worker threads (results identical for every value).
  std::size_t threads = 1;
  /// Probe memoization for every method (cache hits are free).
  bool probe_cache = true;
  /// Baseline budgets, billed samples.  Smaller than the paper's 100 keeps a
  /// 100-scenario sweep in CI time; the same cap applies to both baselines.
  std::size_t bo_max_samples = 60;
  std::size_t maff_max_samples = 60;
  /// Noisy validation executions per accepted configuration.
  std::size_t validation_runs = 40;
  /// Expensive audits (serving bit-identity, thread determinism) run on
  /// every `deep_audit_stride`-th scenario; 0 disables them.
  std::size_t deep_audit_stride = 10;
  /// AARC wins against a baseline when its validated mean cost is within
  /// this factor of the baseline's.
  double win_cost_slack = 1.02;
  AuditOptions audit{};

  void validate() const;
};

/// One method's outcome on one scenario.
struct MethodOutcome {
  bool feasible = false;
  std::size_t billed_samples = 0;
  double search_cost = 0.0;     ///< total cost billed while sampling
  double mean_makespan = 0.0;   ///< validated noisy mean (0 when infeasible)
  double mean_cost = 0.0;       ///< validated noisy mean (0 when infeasible)
  double slo_attainment = 0.0;  ///< fraction of validation runs within SLO
                                ///< (failed runs count as violations)
};

struct ScenarioOutcome {
  std::string name;
  TopologyKind topology = TopologyKind::Chain;
  std::size_t function_count = 0;
  double slo_seconds = 0.0;
  bool has_chaos = false;
  /// The scenario's SLO bound semantics (legacy mean/point by default).
  search::SloBound slo_bound{};
  MethodOutcome aarc;
  MethodOutcome bo;
  MethodOutcome maff;
  bool aarc_win = false;
  std::size_t violations = 0;  ///< audit violations contributed by this scenario
};

struct SweepResult {
  std::vector<ScenarioOutcome> scenarios;
  std::vector<AuditViolation> violations;

  std::size_t wins() const;
  double aarc_win_rate() const;
};

/// Per-scenario progress callback (sequential, called after each scenario).
using SweepProgress = std::function<void(const ScenarioOutcome&)>;

/// Run the sweep.  Fully deterministic: no wall-clock anywhere in the result.
SweepResult run_sweep(const SweepOptions& options, const SweepProgress& progress = {});

/// Deterministic JSON rendering (options echo, per-scenario rows, per-method
/// aggregate distributions, win-rate, violations).
io::Json sweep_to_json(const SweepOptions& options, const SweepResult& result);

}  // namespace aarc::scenario
