#include "scenario/audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "aarc/scheduler.h"
#include "platform/pricing.h"
#include "scenario/scenario_io.h"
#include "serving/engine.h"
#include "serving/simulator.h"

namespace aarc::scenario {

namespace {

void add(std::vector<AuditViolation>& out, const Scenario& scenario,
         std::string invariant, std::string detail) {
  out.push_back(AuditViolation{scenario.name, std::move(invariant), std::move(detail)});
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string to_string(const AuditViolation& violation) {
  return violation.scenario + " [" + violation.invariant + "] " + violation.detail;
}

void audit_roundtrip(const Scenario& scenario, std::vector<AuditViolation>& out) {
  const std::string first = scenario_to_string(scenario);
  Scenario reparsed = scenario_from_string(first);
  const std::string second = scenario_to_string(reparsed);
  if (first != second) {
    add(out, scenario, "roundtrip",
        "serialize -> parse -> serialize is not byte-identical");
    return;
  }
  if (reparsed.workload.workflow.function_count() !=
      scenario.workload.workflow.function_count()) {
    add(out, scenario, "roundtrip", "reparsed workflow lost functions");
  }
  if (reparsed.workload.slo_seconds != scenario.workload.slo_seconds) {
    add(out, scenario, "roundtrip", "reparsed SLO differs");
  }
  if (reparsed.chaos.size() != scenario.chaos.size()) {
    add(out, scenario, "roundtrip", "reparsed chaos schedule lost incidents");
  }
}

void audit_search_result(const Scenario& scenario, const std::string& method,
                         const search::SearchResult& result,
                         std::size_t billed_budget_cap,
                         const platform::ConfigGrid& grid,
                         const platform::Executor& executor,
                         const AuditOptions& options,
                         std::vector<AuditViolation>& out) {
  const std::size_t n = scenario.workload.workflow.function_count();
  const double slo = scenario.workload.slo_seconds;

  // Budget: billed samples are the currency every cap is denominated in.
  if (result.samples() > billed_budget_cap) {
    add(out, scenario, "budget",
        method + " billed " + std::to_string(result.samples()) +
            " samples, budget cap " + std::to_string(billed_budget_cap));
  }

  // Trace bookkeeping, sample by sample.
  bool any_feasible_sample = false;
  for (const search::Sample& s : result.trace.samples()) {
    const bool expect_feasible = !s.failed && s.makespan <= slo;
    if (s.feasible != expect_feasible) {
      add(out, scenario, "trace",
          method + " sample " + std::to_string(s.index) +
              ": feasible flag inconsistent with failed/makespan/SLO");
    }
    if (s.cache_hit &&
        (s.probe_attempts != 0 || s.wall_seconds != 0.0 || s.wall_cost != 0.0)) {
      add(out, scenario, "trace",
          method + " sample " + std::to_string(s.index) +
              ": cache hit carries executions or wall charges");
    }
    if (!s.cache_hit && s.probe_attempts == 0) {
      add(out, scenario, "trace",
          method + " sample " + std::to_string(s.index) +
              ": billed sample consumed no platform execution");
    }
    any_feasible_sample = any_feasible_sample || s.feasible;
  }
  if (result.found_feasible && !any_feasible_sample) {
    add(out, scenario, "trace",
        method + " claims a feasible config but no trace sample was feasible");
  }

  if (!result.found_feasible) {
    return;  // nothing further to audit without a config
  }

  // Grid feasibility of the returned configuration.
  if (result.best_config.size() != n) {
    add(out, scenario, "grid",
        method + " best_config has " + std::to_string(result.best_config.size()) +
            " entries for " + std::to_string(n) + " functions");
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!grid.contains(result.best_config[i])) {
      add(out, scenario, "grid",
          method + " best_config[" + std::to_string(i) + "] = " +
              platform::to_string(result.best_config[i]) + " is off the grid");
    }
  }

  // SLO accounting: the accepted config must reproduce within the SLO under
  // the noise-free executor (feasibility was judged on a ~3% noisy sample,
  // hence the tolerance).
  const auto mean = executor.execute_mean(scenario.workload.workflow,
                                          result.best_config);
  if (mean.failed) {
    add(out, scenario, "trace",
        method + " accepted config fails (OOM) under the noise-free executor");
  } else if (mean.makespan > slo * (1.0 + options.slo_mean_tolerance)) {
    add(out, scenario, "trace",
        method + " accepted config mean makespan " + fmt(mean.makespan) +
            " exceeds SLO " + fmt(slo) + " beyond tolerance");
  }
}

void audit_profile_report(const Scenario& scenario, const std::string& method,
                          const platform::ProfileReport& report, double slo_seconds,
                          std::vector<AuditViolation>& out) {
  if (report.runs != report.makespans.size() + report.failures) {
    add(out, scenario, "report",
        method + " profile runs != successful series + failures");
  }
  if (report.makespan.count != report.makespans.size() ||
      report.cost.count != report.costs.size()) {
    add(out, scenario, "report", method + " summary counts mismatch raw series");
  }
  if (!report.makespans.empty()) {
    double sum = 0.0;
    std::size_t violations = 0;
    for (double m : report.makespans) {
      sum += m;
      if (m > slo_seconds) ++violations;
    }
    const double mean = sum / static_cast<double>(report.makespans.size());
    if (std::abs(mean - report.makespan.mean) >
        1e-9 * (1.0 + std::abs(report.makespan.mean))) {
      add(out, scenario, "report",
          method + " summary mean diverges from raw makespan series");
    }
    const double want_rate = static_cast<double>(violations) /
                             static_cast<double>(report.makespans.size());
    const double got_rate = report.slo_violation_rate(slo_seconds);
    if (std::abs(want_rate - got_rate) > 1e-12) {
      add(out, scenario, "report",
          method + " slo_violation_rate " + fmt(got_rate) +
              " != recomputed rate " + fmt(want_rate));
    }
  }
}

void audit_serving_bit_identity(const Scenario& scenario,
                                const platform::WorkflowConfig& config,
                                const AuditOptions& options,
                                std::vector<AuditViolation>& out) {
  const platform::Workflow& wf = scenario.workload.workflow;
  const platform::DecoupledLinearPricing pricing;
  const std::uint64_t arrival_seed =
      support::derive_seed(scenario.corpus_seed, scenario.index);

  serving::ServingOptions legacy_opts;
  legacy_opts.seed = support::derive_seed(arrival_seed, 1);
  legacy_opts.chaos = scenario.chaos;

  const auto stream = serving::poisson_stream(options.serving_requests,
                                              options.serving_rate, 0.7, 1.4, config,
                                              arrival_seed);
  const serving::ServingSimulator legacy(wf, pricing, legacy_opts);
  const serving::ServingReport want = legacy.serve(stream);

  serving::EngineOptions engine_opts;
  engine_opts.keep_alive_seconds = legacy_opts.keep_alive_seconds;
  engine_opts.cold_start_min_seconds = legacy_opts.cold_start_min_seconds;
  engine_opts.cold_start_max_seconds = legacy_opts.cold_start_max_seconds;
  engine_opts.max_containers_per_function = legacy_opts.max_containers_per_function;
  engine_opts.noise = legacy_opts.noise;
  engine_opts.faults = legacy_opts.faults;
  engine_opts.retry = legacy_opts.retry;
  engine_opts.seed = legacy_opts.seed;
  engine_opts.chaos = legacy_opts.chaos;

  serving::ScaleSpec scales;
  scales.scale_min = 0.7;
  scales.scale_max = 1.4;
  serving::ArrivalLimits limits;
  limits.max_requests = options.serving_requests;
  serving::PoissonProcess arrivals(options.serving_rate, scales, limits, arrival_seed);
  const serving::ServingEngine engine(wf, pricing, engine_opts);
  const serving::StreamingReport got = engine.run(arrivals, config);

  const auto check_count = [&](const char* what, std::size_t a, std::size_t b) {
    if (a != b) {
      add(out, scenario, "serving",
          std::string("engine vs heap ") + what + ": " + std::to_string(a) +
              " != " + std::to_string(b));
    }
  };
  check_count("requests", got.requests, stream.size());
  check_count("cold_starts", got.cold_starts, want.cold_starts);
  check_count("warm_starts", got.warm_starts, want.warm_starts);
  check_count("failed_requests", got.failed_requests, want.failed_requests);
  check_count("failed_after_retries", got.failed_after_retries,
              want.failed_after_retries);
  check_count("retries", got.retries, want.retries);
  check_count("timeouts", got.timeouts, want.timeouts);
  check_count("peak_containers", got.peak_containers, want.peak_containers);
  // Aggregate sums accumulate in completion order, which may differ between
  // the engines; per-request values are exact, so only ULPs differ here.
  if (std::abs(got.total_cost - want.total_cost) >
      1e-9 * (1.0 + std::abs(want.total_cost))) {
    add(out, scenario, "serving",
        "engine vs heap total_cost: " + fmt(got.total_cost) + " != " +
            fmt(want.total_cost));
  }
  if (std::abs(got.latency.mean - want.latency.mean) > 1e-9) {
    add(out, scenario, "serving",
        "engine vs heap mean latency: " + fmt(got.latency.mean) + " != " +
            fmt(want.latency.mean));
  }
}

void audit_thread_determinism(const Scenario& scenario,
                              const platform::Executor& executor,
                              const platform::ConfigGrid& grid, std::uint64_t seed,
                              std::vector<AuditViolation>& out) {
  const auto run = [&](std::size_t threads) {
    core::SchedulerOptions opts;
    opts.seed = seed;
    opts.evaluator_threads = threads;
    const core::GraphCentricScheduler scheduler(executor, grid, opts);
    return scheduler.schedule(scenario.workload.workflow,
                              scenario.workload.slo_seconds);
  };
  const core::ScheduleReport one = run(1);
  const core::ScheduleReport eight = run(8);

  if (one.result.found_feasible != eight.result.found_feasible) {
    add(out, scenario, "threads", "threads=8 feasibility differs from threads=1");
    return;
  }
  if (one.result.best_config != eight.result.best_config) {
    add(out, scenario, "threads", "threads=8 best_config differs from threads=1");
  }
  if (one.result.trace.size() != eight.result.trace.size() ||
      one.result.samples() != eight.result.samples()) {
    add(out, scenario, "threads", "threads=8 trace shape differs from threads=1");
    return;
  }
  const auto& a = one.result.trace.samples();
  const auto& b = eight.result.trace.samples();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].makespan != b[i].makespan || a[i].cost != b[i].cost ||
        a[i].config != b[i].config) {
      add(out, scenario, "threads",
          "threads=8 sample " + std::to_string(i) + " differs from threads=1");
      return;
    }
  }
}

}  // namespace aarc::scenario
