// Invariant auditor: the trust layer of the robustness sweep.
//
// A sweep over generated scenarios is only evidence if every run it
// aggregates obeyed the system's contracts.  The auditor re-checks, per
// scenario, the invariants the rest of the codebase promises:
//
//   roundtrip        — scenario JSON serialization is byte-stable and
//                      parse(print(s)) == print-identical;
//   grid             — a returned best_config has one entry per function and
//                      every entry sits exactly on the discrete grid;
//   budget           — billed samples respect the method's budget cap (cache
//                      hits are free and must not be charged);
//   trace            — per-sample bookkeeping is consistent: feasible ==
//                      !failed && makespan <= SLO, cache hits carry zero
//                      executions and zero wall charges, found_feasible
//                      configs reproduce within the SLO under the noise-free
//                      executor;
//   report           — the report layer's SLO accounting (Profiler) matches
//                      a manual recomputation from the raw makespan series;
//   serving          — the streaming ServingEngine is bit-identical to the
//                      legacy heap DES on the scenario (chaos overlay
//                      included);
//   threads          — AARC at threads=8 returns bit-identical results to
//                      threads=1.
//
// Checks append AuditViolation records instead of throwing, so one broken
// invariant does not mask the others and the sweep can report all of them.
#pragma once

#include <string>
#include <vector>

#include "platform/executor.h"
#include "platform/profiler.h"
#include "platform/resource.h"
#include "scenario/generator.h"
#include "search/evaluator.h"

namespace aarc::scenario {

/// One broken invariant on one scenario.
struct AuditViolation {
  std::string scenario;   ///< scenario name
  std::string invariant;  ///< "roundtrip" | "grid" | "budget" | "trace" | ...
  std::string detail;     ///< human-readable description of the breach
};

std::string to_string(const AuditViolation& violation);

/// Auditor knobs.
struct AuditOptions {
  /// Tolerance on the noise-free makespan of an accepted config vs the SLO:
  /// search feasibility is judged on a noisy sample (~3% noise), so the mean
  /// may legitimately sit slightly above a just-met SLO.
  double slo_mean_tolerance = 0.10;
  /// Requests per serving bit-identity check.
  std::size_t serving_requests = 200;
  /// Arrival rate for the serving bit-identity check.
  double serving_rate = 0.2;
};

/// Serialization determinism: print -> parse -> print must reproduce the
/// exact bytes, and the reparsed scenario must describe the same workload.
void audit_roundtrip(const Scenario& scenario, std::vector<AuditViolation>& out);

/// Search-result invariants for one method run on one scenario: grid
/// feasibility of best_config, billed-sample budget, per-sample trace
/// consistency, and noise-free SLO compliance of the accepted config.
void audit_search_result(const Scenario& scenario, const std::string& method,
                         const search::SearchResult& result,
                         std::size_t billed_budget_cap,
                         const platform::ConfigGrid& grid,
                         const platform::Executor& executor,
                         const AuditOptions& options,
                         std::vector<AuditViolation>& out);

/// Report-layer consistency: the Profiler's aggregate and SLO-violation rate
/// must match a manual recomputation from its raw series.
void audit_profile_report(const Scenario& scenario, const std::string& method,
                          const platform::ProfileReport& report, double slo_seconds,
                          std::vector<AuditViolation>& out);

/// Streaming-engine vs legacy heap DES bit-identity on this scenario (with
/// its chaos overlay active in both engines).
void audit_serving_bit_identity(const Scenario& scenario,
                                const platform::WorkflowConfig& config,
                                const AuditOptions& options,
                                std::vector<AuditViolation>& out);

/// AARC threads=8 must be bit-identical to threads=1 on this scenario.
void audit_thread_determinism(const Scenario& scenario,
                              const platform::Executor& executor,
                              const platform::ConfigGrid& grid, std::uint64_t seed,
                              std::vector<AuditViolation>& out);

}  // namespace aarc::scenario
