#include "scenario/generator.h"

#include <algorithm>
#include <string>

#include "perf/analytic.h"
#include "perf/composite.h"
#include "perf/profile_table.h"
#include "platform/executor.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace aarc::scenario {

using support::expects;

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::Chain:
      return "chain";
    case TopologyKind::FanOut:
      return "fan_out";
    case TopologyKind::FanIn:
      return "fan_in";
    case TopologyKind::Diamond:
      return "diamond";
    case TopologyKind::LayeredMixed:
      return "layered_mixed";
  }
  return "?";
}

TopologyKind topology_kind_from_string(std::string_view name) {
  for (TopologyKind kind : all_topology_kinds()) {
    if (to_string(kind) == name) return kind;
  }
  expects(false, "unknown topology kind: " + std::string(name) +
                     " (chain | fan_out | fan_in | diamond | layered_mixed)");
  throw support::ContractViolation("unreachable");
}

const std::vector<TopologyKind>& all_topology_kinds() {
  static const std::vector<TopologyKind> kinds = {
      TopologyKind::Chain, TopologyKind::FanOut, TopologyKind::FanIn,
      TopologyKind::Diamond, TopologyKind::LayeredMixed};
  return kinds;
}

void GeneratorOptions::validate() const {
  expects(min_depth >= 1 && min_depth <= max_depth,
          "generator depth range must satisfy 1 <= min_depth <= max_depth");
  expects(min_width >= 2 && min_width <= max_width,
          "generator width range must satisfy 2 <= min_width <= max_width");
  expects(edge_density >= 0.0 && edge_density <= 1.0,
          "edge_density must be in [0, 1]");
  expects(slo_headroom_min > 1.0 && slo_headroom_min <= slo_headroom_max,
          "SLO headroom range must satisfy 1 < min <= max");
  expects(input_sensitive_probability >= 0.0 && input_sensitive_probability <= 1.0,
          "input_sensitive_probability must be in [0, 1]");
  expects(chaos_probability >= 0.0 && chaos_probability <= 1.0,
          "chaos_probability must be in [0, 1]");
  expects(chaos_horizon_seconds > 0.0, "chaos_horizon_seconds must be positive");
  expects(percentile_slo_probability >= 0.0 && percentile_slo_probability <= 1.0,
          "percentile_slo_probability must be in [0, 1]");
}

namespace {

/// Zero-padded function names keep generated JSON stable and diff-friendly.
std::string fn_name(std::size_t i) {
  std::string digits = std::to_string(i);
  return "f" + std::string(digits.size() < 2 ? 2 - digits.size() : 0, '0') + digits;
}

perf::AnalyticParams random_analytic_params(support::Rng& rng) {
  perf::AnalyticParams p;
  // Function archetype: CPU-bound, memory-bound, or IO-bound — the affinity
  // mix the paper's Fig. 2 decoupling argument rests on.
  switch (rng.uniform_int(0, 2)) {
    case 0:  // CPU-bound
      p.io_seconds = rng.uniform(0.5, 3.0);
      p.serial_seconds = rng.uniform(2.0, 8.0);
      p.parallel_seconds = rng.uniform(20.0, 80.0);
      p.max_parallelism = rng.uniform(2.0, 8.0);
      p.working_set_mb = rng.uniform(256.0, 1024.0);
      break;
    case 1:  // memory-bound
      p.io_seconds = rng.uniform(1.0, 5.0);
      p.serial_seconds = rng.uniform(5.0, 15.0);
      p.parallel_seconds = rng.uniform(5.0, 30.0);
      p.max_parallelism = rng.uniform(1.0, 4.0);
      p.working_set_mb = rng.uniform(2048.0, 8192.0);
      break;
    default:  // IO-bound
      p.io_seconds = rng.uniform(5.0, 20.0);
      p.serial_seconds = rng.uniform(2.0, 10.0);
      p.parallel_seconds = rng.uniform(0.5, 5.0);
      p.max_parallelism = rng.uniform(1.0, 2.0);
      p.working_set_mb = rng.uniform(192.0, 768.0);
      break;
  }
  p.min_memory_mb = p.working_set_mb * rng.uniform(0.3, 0.6);
  p.pressure_coeff = rng.uniform(1.0, 6.0);
  p.input_work_exp = 1.0;
  p.input_memory_exp = 0.0;
  return p;
}

/// Tabulate an analytic surface on a small cpu x mem grid: the shape of a
/// measured function, with the same affinities the analytic family covers.
std::unique_ptr<perf::PerfModel> random_profile_table(support::Rng& rng) {
  const perf::AnalyticParams p = random_analytic_params(rng);
  const perf::AnalyticModel surface(p);
  const std::vector<double> cpu_points = {0.5, 2.0, 6.0, 10.0};
  // Keep the whole table above the OOM floor so every entry is finite.
  const double mem_floor = std::max(256.0, p.min_memory_mb * 1.05);
  std::vector<double> mem_points = {mem_floor, mem_floor * 2.0, mem_floor * 4.0,
                                    10240.0};
  // Strictly increasing even when the floor is near the grid top.
  for (std::size_t i = 1; i < mem_points.size(); ++i) {
    mem_points[i] = std::max(mem_points[i], mem_points[i - 1] * 1.25);
  }
  std::vector<double> runtimes;
  runtimes.reserve(cpu_points.size() * mem_points.size());
  for (double cpu : cpu_points) {
    for (double mem : mem_points) {
      runtimes.push_back(surface.mean_runtime(cpu, mem, 1.0));
    }
  }
  return std::make_unique<perf::ProfileTableModel>(cpu_points, mem_points,
                                                   std::move(runtimes), 1.0);
}

/// Sample one per-function model: mostly analytic, with composite and
/// profile-table functions mixed in so every workflow_io model codec path is
/// exercised by generated corpora.
std::unique_ptr<perf::PerfModel> random_model(support::Rng& rng) {
  const auto kind = rng.uniform_int(0, 9);
  if (kind < 6) {
    return std::make_unique<perf::AnalyticModel>(random_analytic_params(rng));
  }
  if (kind < 8) {
    std::vector<std::unique_ptr<perf::PerfModel>> stages;
    const std::size_t count = 2 + (rng.bernoulli(0.4) ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) {
      stages.push_back(
          std::make_unique<perf::AnalyticModel>(random_analytic_params(rng)));
    }
    return std::make_unique<perf::CompositeModel>(std::move(stages));
  }
  return random_profile_table(rng);
}

std::size_t sample_in(support::Rng& rng, std::size_t lo, std::size_t hi) {
  return static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
}

platform::Workflow build_topology(const std::string& name, TopologyKind kind,
                                  const GeneratorOptions& o, support::Rng& rng) {
  platform::Workflow wf(name);
  std::size_t next = 0;
  const auto add = [&] { return wf.add_function(fn_name(next++), random_model(rng)); };

  switch (kind) {
    case TopologyKind::Chain: {
      const std::size_t depth = sample_in(rng, o.min_depth + 1, o.max_depth + 2);
      dag::NodeId prev = add();
      for (std::size_t i = 1; i < depth; ++i) {
        const dag::NodeId node = add();
        wf.add_edge(prev, node);
        prev = node;
      }
      break;
    }
    case TopologyKind::FanOut: {
      const std::size_t width = sample_in(rng, o.min_width, o.max_width);
      const dag::NodeId source = add();
      std::vector<dag::NodeId> branches;
      for (std::size_t b = 0; b < width; ++b) {
        dag::NodeId node = add();
        wf.add_edge(source, node);
        // Some branches are two functions deep, so branch runtimes diverge.
        if (rng.bernoulli(0.4)) {
          const dag::NodeId tail = add();
          wf.add_edge(node, tail);
          node = tail;
        }
        branches.push_back(node);
      }
      const dag::NodeId sink = add();
      for (dag::NodeId b : branches) wf.add_edge(b, sink);
      break;
    }
    case TopologyKind::FanIn: {
      const std::size_t width = sample_in(rng, o.min_width, o.max_width);
      std::vector<dag::NodeId> sources;
      for (std::size_t b = 0; b < width; ++b) sources.push_back(add());
      const dag::NodeId join = add();
      for (dag::NodeId s : sources) wf.add_edge(s, join);
      dag::NodeId prev = join;
      const std::size_t tail = sample_in(rng, 1, o.max_depth);
      for (std::size_t i = 0; i < tail; ++i) {
        const dag::NodeId node = add();
        wf.add_edge(prev, node);
        prev = node;
      }
      break;
    }
    case TopologyKind::Diamond: {
      // k stacked diamonds: split -> two branches -> join, chained.
      const std::size_t diamonds = sample_in(rng, 1, std::max<std::size_t>(1, o.max_depth / 2));
      dag::NodeId prev = add();
      for (std::size_t d = 0; d < diamonds; ++d) {
        const dag::NodeId left = add();
        const dag::NodeId right = add();
        const dag::NodeId join = add();
        wf.add_edge(prev, left);
        wf.add_edge(prev, right);
        wf.add_edge(left, join);
        wf.add_edge(right, join);
        prev = join;
      }
      break;
    }
    case TopologyKind::LayeredMixed: {
      const std::size_t depth = sample_in(rng, o.min_depth, o.max_depth);
      std::vector<dag::NodeId> previous{add()};
      std::vector<dag::NodeId> earlier;  // all nodes before the previous layer
      for (std::size_t l = 0; l < depth; ++l) {
        const std::size_t width = sample_in(rng, 1, o.max_width);
        std::vector<dag::NodeId> current;
        for (std::size_t b = 0; b < width; ++b) {
          const dag::NodeId node = add();
          // Guaranteed predecessor in the previous layer keeps levels honest.
          wf.add_edge(previous[rng.index(previous.size())], node);
          // Extra cross edges from the previous layer...
          for (dag::NodeId p : previous) {
            if (!wf.graph().has_edge(p, node) && rng.bernoulli(o.edge_density)) {
              wf.add_edge(p, node);
            }
          }
          // ...plus skip edges from any earlier layer (sparser).
          for (dag::NodeId p : earlier) {
            if (rng.bernoulli(o.edge_density * 0.3)) wf.add_edge(p, node);
          }
          current.push_back(node);
        }
        // Every previous-layer node must reach somewhere (no stranded sinks
        // mid-graph; keeps the DAG connected with a single terminal layer).
        for (dag::NodeId p : previous) {
          if (wf.graph().successors(p).empty()) {
            wf.add_edge(p, current[rng.index(current.size())]);
          }
        }
        earlier.insert(earlier.end(), previous.begin(), previous.end());
        previous = std::move(current);
      }
      if (previous.size() > 1) {
        const dag::NodeId sink = add();
        for (dag::NodeId p : previous) wf.add_edge(p, sink);
      }
      break;
    }
  }
  return wf;
}

chaos::IncidentSchedule sample_chaos(const platform::Workflow& wf,
                                     const GeneratorOptions& o, support::Rng& rng) {
  chaos::IncidentSchedule schedule;
  const std::size_t count = 1 + (rng.bernoulli(0.35) ? 1 : 0);
  for (std::size_t i = 0; i < count; ++i) {
    chaos::Incident incident;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        incident.kind = chaos::IncidentKind::Outage;
        break;
      case 1:
        incident.kind = chaos::IncidentKind::Brownout;
        break;
      default:
        incident.kind = chaos::IncidentKind::ThrottleStorm;
        break;
    }
    const double horizon = o.chaos_horizon_seconds;
    const double start = rng.uniform(0.1 * horizon, 0.6 * horizon);
    const double duration = rng.uniform(0.1 * horizon, 0.3 * horizon);
    incident.start_seconds = start;
    incident.end_seconds = start + duration;
    incident.ramp_seconds = rng.bernoulli(0.5) ? rng.uniform(0.0, duration * 0.25) : 0.0;
    incident.severity = rng.uniform(0.3, 0.95);
    // Targeted with probability 1/2: a correlated subset of 1-2 functions.
    if (rng.bernoulli(0.5)) {
      const std::size_t targets =
          std::min<std::size_t>(wf.function_count(), 1 + (rng.bernoulli(0.4) ? 1 : 0));
      const auto perm = rng.permutation(wf.function_count());
      for (std::size_t t = 0; t < targets; ++t) incident.targets.push_back(perm[t]);
      std::sort(incident.targets.begin(), incident.targets.end());
    }
    incident.validate();
    schedule.add(std::move(incident));
  }
  return schedule;
}

}  // namespace

Scenario generate_scenario(std::uint64_t corpus_seed, std::size_t index,
                           const GeneratorOptions& options) {
  options.validate();
  // One decorrelated stream per (corpus, index): scenario i is independent of
  // whether scenarios 0..i-1 were generated in the same process.
  support::Rng rng(support::derive_seed(support::derive_seed(corpus_seed, 0x5CE9A210),
                                        static_cast<std::uint64_t>(index)));

  const TopologyKind kind = all_topology_kinds()[rng.index(kTopologyKindCount)];
  const std::string name = "s" + std::to_string(corpus_seed) + "-" +
                           std::to_string(index) + "-" + to_string(kind);

  Scenario scenario(workloads::Workload(build_topology(name, kind, options, rng)));
  scenario.name = name;
  scenario.corpus_seed = corpus_seed;
  scenario.index = index;
  scenario.topology = kind;
  scenario.workload.workflow.validate();

  // SLO as a multiple of the critical path at the reference (grid max)
  // configuration: the noise-free base-config makespan IS the critical-path
  // length of the weighted DAG, so headroom > 1 guarantees feasibility at
  // the base configuration by construction.
  const platform::Executor executor;
  const platform::ConfigGrid grid;
  const auto base = platform::uniform_config(scenario.workload.workflow.function_count(),
                                             grid.max_config());
  const auto reference = executor.execute_mean(scenario.workload.workflow, base);
  expects(!reference.failed, "generated workflow must run under the base config");
  const double headroom =
      rng.uniform(options.slo_headroom_min, options.slo_headroom_max);
  scenario.workload.slo_seconds = reference.makespan * headroom;

  // Input classes: always present (the serialized schema keeps them), with
  // non-unit scales only for input-sensitive scenarios.
  scenario.workload.input_sensitive = rng.bernoulli(options.input_sensitive_probability);
  double light = 1.0, heavy = 1.0;
  if (scenario.workload.input_sensitive) {
    light = rng.uniform(0.4, 0.9);
    heavy = rng.uniform(1.1, 2.0);
  }
  scenario.workload.input_classes = {{workloads::InputClass::Light, light},
                                     {workloads::InputClass::Middle, 1.0},
                                     {workloads::InputClass::Heavy, heavy}};

  if (rng.bernoulli(options.chaos_probability)) {
    scenario.chaos = sample_chaos(scenario.workload.workflow, options, rng);
  }

  // Percentile SLO bound (doc/SLO.md).  The `> 0` guard keeps the default
  // path off the rng entirely, so corpora generated before this knob
  // existed stay byte-identical.
  if (options.percentile_slo_probability > 0.0 &&
      rng.bernoulli(options.percentile_slo_probability)) {
    scenario.slo_bound.metric =
        rng.bernoulli(0.5) ? search::SloMetric::P95 : search::SloMetric::P50;
    scenario.slo_bound.confidence = rng.uniform(0.80, 0.95);
  }
  return scenario;
}

std::vector<Scenario> generate_corpus(std::uint64_t corpus_seed, std::size_t count,
                                      const GeneratorOptions& options) {
  std::vector<Scenario> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(generate_scenario(corpus_seed, i, options));
  }
  return out;
}

}  // namespace aarc::scenario
