// Scenario serialization: generated corpora are data on disk.
//
// A scenario document wraps the existing workload and chaos-profile schemas
// with provenance, so a checked-in corpus file is self-describing and can be
// re-derived (and diffed) from its (seed, index) alone:
//
//   {
//     "schema": "aarc-scenario-v1",
//     "name": "s42-7-fan_out",
//     "seed": 42,
//     "index": 7,
//     "topology": "fan_out",
//     "workload": { <io/workflow_io.h workload schema> },
//     "chaos": { <io/chaos_io.h profile schema> }   // optional; absent = none
//   }
//
// Serialization is byte-stable: io::Json objects are std::map-backed, so the
// same Scenario always prints the same bytes — the determinism contract the
// generator tests pin down.
#pragma once

#include <string>

#include "io/json.h"
#include "scenario/generator.h"

namespace aarc::scenario {

inline constexpr std::string_view kScenarioSchema = "aarc-scenario-v1";

/// Serialize a scenario (workload via workflow_io, chaos via chaos_io).
io::Json scenario_to_json(const Scenario& scenario);

/// Parse a scenario document.  Throws io::JsonError on schema violations
/// (wrong "schema" tag, missing fields, type mismatches) and
/// support::ContractViolation on semantic ones.
Scenario scenario_from_json(const io::Json& doc);

/// Text round-trips.
std::string scenario_to_string(const Scenario& scenario, int indent = 2);
Scenario scenario_from_string(std::string_view text);

}  // namespace aarc::scenario
