#include "scenario/scenario_io.h"

#include <cmath>

#include "io/chaos_io.h"
#include "io/workflow_io.h"

namespace aarc::scenario {

io::Json scenario_to_json(const Scenario& scenario) {
  io::JsonObject doc;
  doc["schema"] = std::string(kScenarioSchema);
  doc["name"] = scenario.name;
  doc["seed"] = static_cast<double>(scenario.corpus_seed);
  doc["index"] = scenario.index;
  doc["topology"] = to_string(scenario.topology);
  doc["workload"] = io::workload_to_json(scenario.workload);
  if (!scenario.chaos.empty()) {
    doc["chaos"] = io::chaos_profile_to_json(scenario.workload.workflow,
                                             scenario.chaos, scenario.name);
  }
  // Probabilistic SLO bound (doc/SLO.md): emitted only when non-legacy so
  // pre-existing corpora round-trip byte-identically.
  if (!scenario.slo_bound.is_legacy()) {
    doc["slo_metric"] = search::to_string(scenario.slo_bound.metric);
    doc["slo_confidence"] = scenario.slo_bound.confidence;
  }
  return io::Json(std::move(doc));
}

Scenario scenario_from_json(const io::Json& doc) {
  if (!doc.is_object()) throw io::JsonError("scenario document must be an object");
  const std::string schema = doc.string_or("schema", "");
  if (schema != kScenarioSchema) {
    throw io::JsonError("scenario document has schema tag '" + schema +
                        "'; expected '" + std::string(kScenarioSchema) + "'");
  }
  if (!doc.contains("workload")) {
    throw io::JsonError("scenario document is missing the 'workload' object");
  }
  Scenario scenario(io::workload_from_json(doc.at("workload")));
  scenario.name = doc.string_or("name", scenario.workload.workflow.name());
  const double seed = doc.number_or("seed", 0.0);
  if (seed < 0.0 || std::floor(seed) != seed) {
    throw io::JsonError("scenario field 'seed' must be a non-negative integer");
  }
  scenario.corpus_seed = static_cast<std::uint64_t>(seed);
  const double index = doc.number_or("index", 0.0);
  if (index < 0.0 || std::floor(index) != index) {
    throw io::JsonError("scenario field 'index' must be a non-negative integer");
  }
  scenario.index = static_cast<std::size_t>(index);
  scenario.topology = topology_kind_from_string(doc.string_or("topology", "chain"));
  if (doc.contains("chaos")) {
    scenario.chaos =
        io::chaos_profile_from_json(scenario.workload.workflow, doc.at("chaos"));
  }
  if (doc.contains("slo_metric")) {
    scenario.slo_bound.metric =
        search::slo_metric_from_string(doc.string_or("slo_metric", "mean"));
  }
  scenario.slo_bound.confidence = doc.number_or("slo_confidence", 1.0);
  scenario.slo_bound.validate();
  return scenario;
}

std::string scenario_to_string(const Scenario& scenario, int indent) {
  return scenario_to_json(scenario).dump(indent) + "\n";
}

Scenario scenario_from_string(std::string_view text) {
  return scenario_from_json(io::parse_json(text));
}

}  // namespace aarc::scenario
