// Seeded random-scenario generation: the evaluation-breadth engine.
//
// AARC's claims are demonstrated on three hand-written workflows; the
// robustness question ("does the win over BO/MAFF hold on workloads nobody
// hand-wrote?") needs a *population*.  This module samples complete
// scenarios — DAG topology from the structure taxonomy, per-function
// performance models, an SLO derived as a multiple of the base-config
// critical path, input classes, and an optional chaos overlay — fully
// deterministically from (corpus_seed, index): the same pair always yields
// the same scenario, byte-for-byte after serialization (scenario_io.h), on
// every machine and for every --threads setting.
//
// Topology taxonomy (cf. the dynamic-configuration survey in PAPERS.md):
//   * Chain        — a single path, depth d;
//   * FanOut       — one source scatters into w parallel branches that join
//                    a sink (the map/reduce shape);
//   * FanIn        — w independent sources merge into one aggregation
//                    function followed by a tail chain;
//   * Diamond      — k stacked diamonds (split -> two branches -> join);
//   * LayeredMixed — d layers of sampled width, chained predecessors plus
//                    extra skip edges with probability `edge_density`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/incident.h"
#include "search/slo.h"
#include "workloads/workload.h"

namespace aarc::scenario {

/// The structure-taxonomy class a scenario's DAG was sampled from.
enum class TopologyKind { Chain, FanOut, FanIn, Diamond, LayeredMixed };

inline constexpr std::size_t kTopologyKindCount = 5;

std::string to_string(TopologyKind kind);
/// Inverse of to_string; throws support::ContractViolation on unknown names.
TopologyKind topology_kind_from_string(std::string_view name);

/// All taxonomy classes, in declaration order (sweep/coverage iteration).
const std::vector<TopologyKind>& all_topology_kinds();

/// Generator knobs.  Defaults produce small scenarios (3-13 functions) so a
/// 100-scenario sweep with three search methods finishes in CI time.
struct GeneratorOptions {
  std::size_t min_depth = 2;   ///< interior depth (chain length, layer count)
  std::size_t max_depth = 4;
  std::size_t min_width = 2;   ///< parallel branches per parallel section
  std::size_t max_width = 4;
  /// LayeredMixed: probability of each optional skip/cross edge.
  double edge_density = 0.35;
  /// SLO = headroom x base-config (grid max) critical-path makespan, with
  /// headroom drawn uniformly from this range.  > 1 keeps scenarios feasible
  /// by construction at the base configuration.
  double slo_headroom_min = 1.4;
  double slo_headroom_max = 2.4;
  /// Probability that a scenario is input-sensitive (gets non-unit class
  /// scales).
  double input_sensitive_probability = 0.25;
  /// Probability that a scenario carries a chaos overlay (1-2 seeded
  /// incidents over the serving horizon).
  double chaos_probability = 0.0;
  /// Simulated-time horizon chaos incidents are placed in.
  double chaos_horizon_seconds = 1800.0;
  /// Probability that a scenario carries a percentile SLO bound (p50 or
  /// p95 with confidence drawn from [0.80, 0.95]) instead of the legacy
  /// mean/point bound.  The default 0 draws nothing from the rng, so
  /// existing corpora stay byte-identical.
  double percentile_slo_probability = 0.0;

  /// Throws support::ContractViolation on out-of-range knobs.
  void validate() const;
};

/// One generated scenario: a workload plus its provenance and overlays.
struct Scenario {
  std::string name;                   ///< "s<seed>-<index>-<topology>"
  std::uint64_t corpus_seed = 0;      ///< seed of the corpus this came from
  std::size_t index = 0;              ///< position within the corpus
  TopologyKind topology = TopologyKind::Chain;
  workloads::Workload workload;
  /// Optional chaos overlay for serving-path legs; empty = none.
  chaos::IncidentSchedule chaos;
  /// SLO bound semantics (doc/SLO.md): the legacy default is the mean/point
  /// check; percentile bounds make the sweep run every method under
  /// replicate-backed verdicts.
  search::SloBound slo_bound{};

  explicit Scenario(workloads::Workload w) : workload(std::move(w)) {}
};

/// Generate scenario `index` of the corpus rooted at `corpus_seed`.
/// Deterministic and order-independent: scenario (seed, i) is the same
/// whether generated alone or as part of a full corpus.
Scenario generate_scenario(std::uint64_t corpus_seed, std::size_t index,
                           const GeneratorOptions& options = {});

/// Generate scenarios 0..count-1 of the corpus.
std::vector<Scenario> generate_corpus(std::uint64_t corpus_seed, std::size_t count,
                                      const GeneratorOptions& options = {});

}  // namespace aarc::scenario
