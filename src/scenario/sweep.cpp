#include "scenario/sweep.h"

#include <algorithm>
#include <cmath>

#include "aarc/scheduler.h"
#include "baselines/bo/bo_optimizer.h"
#include "baselines/maff/maff.h"
#include "platform/profiler.h"
#include "support/contracts.h"
#include "support/statistics.h"

namespace aarc::scenario {

using support::expects;

namespace {

/// The harness seeds every bench uses (bench/harness.h): fixed per method so
/// a sweep is reproducible independent of scenario order.
constexpr std::uint64_t kAarcSeed = 2025;
constexpr std::uint64_t kBoSeed = 3101;
constexpr std::uint64_t kMaffSeed = 3202;
constexpr std::uint64_t kValidationSeed = 4242;

struct MethodRun {
  search::SearchResult result;
  std::size_t budget_cap = 0;
};

MethodRun run_aarc(const Scenario& scenario, const platform::Executor& executor,
                   const platform::ConfigGrid& grid, const SweepOptions& options) {
  core::SchedulerOptions opts;
  opts.seed = kAarcSeed;
  opts.evaluator_threads = options.threads;
  opts.probe_cache = options.probe_cache;
  opts.configurator.slo = scenario.slo_bound;
  const core::GraphCentricScheduler scheduler(executor, grid, opts);
  const core::ScheduleReport report =
      scheduler.schedule(scenario.workload.workflow, scenario.workload.slo_seconds);
  MethodRun run;
  run.result = report.result;
  // MAX_TRAIL billed verdicts per configured path, plus the base profiling
  // and final verification probes (each retried on transient failures).
  // Under a probabilistic bound every verdict bills `min_replicates()`
  // samples, so the billed-sample cap scales accordingly (doc/SLO.md).
  const std::size_t replicates = scenario.slo_bound.min_replicates();
  const std::size_t paths = 1 + report.subpath_count + report.uncovered_count;
  run.budget_cap = replicates * (paths * opts.configurator.max_trail +
                                 2 * (1 + opts.configurator.transient_probe_retries));
  return run;
}

MethodRun run_bo(const Scenario& scenario, const platform::Executor& executor,
                 const platform::ConfigGrid& grid, const SweepOptions& options) {
  search::EvaluatorOptions eval_opts;
  eval_opts.threads = options.threads;
  eval_opts.probe_cache = options.probe_cache;
  search::Evaluator evaluator(scenario.workload.workflow, executor,
                              scenario.workload.slo_seconds, 1.0, kBoSeed, eval_opts);
  baselines::BoOptions opts;
  opts.seed = kBoSeed;
  opts.max_samples = options.bo_max_samples;
  opts.init_samples = std::min<std::size_t>(10, options.bo_max_samples);
  opts.slo = scenario.slo_bound;
  MethodRun run;
  run.result = baselines::bayesian_optimization(evaluator, grid, opts);
  // The probabilistic validation stage re-probes up to validation_candidates
  // configs with min_replicates() fresh draws each, on top of the search
  // budget; under the legacy bound the stage never runs and the cap is the
  // search budget alone, exactly as before.
  run.budget_cap = options.bo_max_samples;
  if (!scenario.slo_bound.is_legacy()) {
    run.budget_cap +=
        opts.validation_candidates * scenario.slo_bound.min_replicates();
  }
  return run;
}

MethodRun run_maff(const Scenario& scenario, const platform::Executor& executor,
                   const platform::ConfigGrid& grid, const SweepOptions& options) {
  search::EvaluatorOptions eval_opts;
  eval_opts.threads = options.threads;
  eval_opts.probe_cache = options.probe_cache;
  search::Evaluator evaluator(scenario.workload.workflow, executor,
                              scenario.workload.slo_seconds, 1.0, kMaffSeed,
                              eval_opts);
  baselines::MaffOptions opts;
  opts.max_samples = options.maff_max_samples;
  opts.slo = scenario.slo_bound;
  MethodRun run;
  run.result = baselines::maff_gradient_descent(evaluator, grid, opts);
  // Probabilistic descents bill min_replicates() per verdict: the budget
  // check happens before a verdict, so the last one may overshoot the cap
  // by one replicate batch, and the final validation adds another.
  run.budget_cap = options.maff_max_samples;
  if (!scenario.slo_bound.is_legacy()) {
    run.budget_cap += 2 * scenario.slo_bound.min_replicates();
  }
  return run;
}

MethodOutcome validate_method(const Scenario& scenario, const std::string& method,
                              const MethodRun& run,
                              const platform::Executor& executor,
                              const SweepOptions& options,
                              std::vector<AuditViolation>& violations) {
  MethodOutcome outcome;
  outcome.feasible = run.result.found_feasible;
  outcome.billed_samples = run.result.samples();
  outcome.search_cost = run.result.trace.total_sampling_cost();
  if (!outcome.feasible) return outcome;

  const platform::Profiler profiler(executor);
  support::Rng rng(kValidationSeed);
  const platform::ProfileReport report =
      profiler.profile(scenario.workload.workflow, run.result.best_config,
                       options.validation_runs, rng);
  audit_profile_report(scenario, method, report, scenario.workload.slo_seconds,
                       violations);
  outcome.mean_makespan = report.makespan.mean;
  outcome.mean_cost = report.cost.mean;
  // Failure-aware attainment over ALL validation runs: an OOM-failed run
  // never met the deadline.
  const double within =
      static_cast<double>(report.makespans.size()) *
      (1.0 - report.slo_violation_rate(scenario.workload.slo_seconds));
  outcome.slo_attainment =
      report.runs > 0 ? within / static_cast<double>(report.runs) : 0.0;
  return outcome;
}

bool beats(const MethodOutcome& aarc, const MethodOutcome& baseline, double slack) {
  if (!aarc.feasible) return false;
  if (!baseline.feasible) return true;
  return aarc.mean_cost <= baseline.mean_cost * slack;
}

io::Json summary_json(const support::Summary& s) {
  io::JsonObject o;
  o["count"] = s.count;
  o["mean"] = s.mean;
  o["stddev"] = s.stddev;
  o["min"] = s.min;
  o["max"] = s.max;
  return io::Json(std::move(o));
}

io::Json method_json(const MethodOutcome& m) {
  io::JsonObject o;
  o["feasible"] = m.feasible;
  o["billed_samples"] = m.billed_samples;
  o["search_cost"] = m.search_cost;
  o["mean_makespan"] = m.mean_makespan;
  o["mean_cost"] = m.mean_cost;
  o["slo_attainment"] = m.slo_attainment;
  return io::Json(std::move(o));
}

/// Aggregate distributions of one method across the sweep.
io::Json method_aggregate_json(const std::vector<ScenarioOutcome>& scenarios,
                               const MethodOutcome ScenarioOutcome::* member) {
  support::Accumulator cost, attainment, samples;
  std::size_t feasible = 0;
  for (const ScenarioOutcome& s : scenarios) {
    const MethodOutcome& m = s.*member;
    samples.add(static_cast<double>(m.billed_samples));
    if (!m.feasible) continue;
    ++feasible;
    cost.add(m.mean_cost);
    attainment.add(m.slo_attainment);
  }
  io::JsonObject o;
  o["feasible_scenarios"] = feasible;
  o["cost"] = summary_json(cost.summary());
  o["slo_attainment"] = summary_json(attainment.summary());
  o["billed_samples"] = summary_json(samples.summary());
  return io::Json(std::move(o));
}

}  // namespace

void SweepOptions::validate() const {
  expects(scenario_count >= 1, "sweep needs at least one scenario");
  expects(bo_max_samples >= 1 && maff_max_samples >= 1,
          "baseline sample budgets must be >= 1");
  expects(validation_runs >= 1, "validation_runs must be >= 1");
  expects(win_cost_slack >= 1.0, "win_cost_slack must be >= 1");
  generator.validate();
}

std::size_t SweepResult::wins() const {
  return static_cast<std::size_t>(
      std::count_if(scenarios.begin(), scenarios.end(),
                    [](const ScenarioOutcome& s) { return s.aarc_win; }));
}

double SweepResult::aarc_win_rate() const {
  return scenarios.empty()
             ? 0.0
             : static_cast<double>(wins()) / static_cast<double>(scenarios.size());
}

SweepResult run_sweep(const SweepOptions& options, const SweepProgress& progress) {
  options.validate();
  const platform::Executor executor;
  const platform::ConfigGrid grid;

  SweepResult result;
  result.scenarios.reserve(options.scenario_count);

  for (std::size_t index = 0; index < options.scenario_count; ++index) {
    const Scenario scenario =
        generate_scenario(options.seed, index, options.generator);
    const std::size_t violations_before = result.violations.size();

    audit_roundtrip(scenario, result.violations);

    const MethodRun aarc = run_aarc(scenario, executor, grid, options);
    const MethodRun bo = run_bo(scenario, executor, grid, options);
    const MethodRun maff = run_maff(scenario, executor, grid, options);
    audit_search_result(scenario, "AARC", aarc.result, aarc.budget_cap, grid,
                        executor, options.audit, result.violations);
    audit_search_result(scenario, "BO", bo.result, bo.budget_cap, grid, executor,
                        options.audit, result.violations);
    audit_search_result(scenario, "MAFF", maff.result, maff.budget_cap, grid,
                        executor, options.audit, result.violations);

    ScenarioOutcome outcome;
    outcome.name = scenario.name;
    outcome.topology = scenario.topology;
    outcome.function_count = scenario.workload.workflow.function_count();
    outcome.slo_seconds = scenario.workload.slo_seconds;
    outcome.has_chaos = !scenario.chaos.empty();
    outcome.slo_bound = scenario.slo_bound;
    outcome.aarc =
        validate_method(scenario, "AARC", aarc, executor, options, result.violations);
    outcome.bo =
        validate_method(scenario, "BO", bo, executor, options, result.violations);
    outcome.maff =
        validate_method(scenario, "MAFF", maff, executor, options, result.violations);
    outcome.aarc_win = beats(outcome.aarc, outcome.bo, options.win_cost_slack) &&
                       beats(outcome.aarc, outcome.maff, options.win_cost_slack);

    if (options.deep_audit_stride > 0 && index % options.deep_audit_stride == 0) {
      const platform::WorkflowConfig serving_config =
          aarc.result.found_feasible
              ? aarc.result.best_config
              : platform::uniform_config(outcome.function_count, grid.max_config());
      audit_serving_bit_identity(scenario, serving_config, options.audit,
                                 result.violations);
      audit_thread_determinism(scenario, executor, grid, kAarcSeed,
                               result.violations);
    }

    outcome.violations = result.violations.size() - violations_before;
    result.scenarios.push_back(outcome);
    if (progress) progress(result.scenarios.back());
  }
  return result;
}

io::Json sweep_to_json(const SweepOptions& options, const SweepResult& result) {
  io::JsonObject doc;

  io::JsonObject opts;
  opts["scenario_count"] = options.scenario_count;
  opts["seed"] = static_cast<double>(options.seed);
  opts["threads"] = options.threads;
  opts["probe_cache"] = options.probe_cache;
  opts["bo_max_samples"] = options.bo_max_samples;
  opts["maff_max_samples"] = options.maff_max_samples;
  opts["validation_runs"] = options.validation_runs;
  opts["deep_audit_stride"] = options.deep_audit_stride;
  opts["win_cost_slack"] = options.win_cost_slack;
  opts["chaos_probability"] = options.generator.chaos_probability;
  opts["percentile_slo_probability"] = options.generator.percentile_slo_probability;
  doc["options"] = io::Json(std::move(opts));

  io::JsonArray rows;
  io::JsonObject topology_counts;
  for (const ScenarioOutcome& s : result.scenarios) {
    io::JsonObject row;
    row["name"] = s.name;
    row["topology"] = to_string(s.topology);
    row["functions"] = s.function_count;
    row["slo_seconds"] = s.slo_seconds;
    row["chaos"] = s.has_chaos;
    if (!s.slo_bound.is_legacy()) {
      row["slo_metric"] = search::to_string(s.slo_bound.metric);
      row["slo_confidence"] = s.slo_bound.confidence;
    }
    row["aarc"] = method_json(s.aarc);
    row["bo"] = method_json(s.bo);
    row["maff"] = method_json(s.maff);
    row["aarc_win"] = s.aarc_win;
    row["violations"] = s.violations;
    rows.push_back(io::Json(std::move(row)));

    const std::string key = to_string(s.topology);
    auto it = topology_counts.find(key);
    topology_counts[key] =
        it == topology_counts.end() ? 1.0 : it->second.as_number() + 1.0;
  }
  doc["scenarios"] = io::Json(std::move(rows));
  doc["topology_counts"] = io::Json(std::move(topology_counts));

  doc["aarc"] = method_aggregate_json(result.scenarios, &ScenarioOutcome::aarc);
  doc["bo"] = method_aggregate_json(result.scenarios, &ScenarioOutcome::bo);
  doc["maff"] = method_aggregate_json(result.scenarios, &ScenarioOutcome::maff);
  doc["aarc_wins"] = result.wins();
  doc["aarc_win_rate"] = result.aarc_win_rate();

  io::JsonArray violations;
  for (const AuditViolation& v : result.violations) {
    violations.push_back(io::Json(to_string(v)));
  }
  doc["audit_violations"] = io::Json(std::move(violations));
  doc["audit_violation_count"] = result.violations.size();
  return io::Json(std::move(doc));
}

}  // namespace aarc::scenario
