#include "obs/span.h"

#include <algorithm>

#include "obs/metrics.h"  // append_json_string

namespace aarc::obs {

std::uint32_t logical_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void Tracer::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

namespace {

std::vector<TraceEvent> sorted_events(std::vector<TraceEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.tid < b.tid;
                   });
  return events;
}

void append_args(std::string& out, const TraceEvent& e) {
  out += "\"args\": {";
  for (std::size_t i = 0; i < e.args.size(); ++i) {
    if (i > 0) out += ", ";
    append_json_string(out, e.args[i].first);
    out += ": ";
    append_json_string(out, e.args[i].second);
  }
  out += "}";
}

void append_event(std::string& out, const TraceEvent& e, bool chrome_format) {
  out += "{\"name\": ";
  append_json_string(out, e.name);
  out += ", \"cat\": ";
  append_json_string(out, e.category);
  if (chrome_format) {
    out += ", \"ph\": \"X\", \"pid\": 1";
    out += ", \"tid\": " + std::to_string(e.tid);
    out += ", \"ts\": " + std::to_string(e.start_us);
    out += ", \"dur\": " + std::to_string(e.duration_us);
  } else {
    out += ", \"tid\": " + std::to_string(e.tid);
    out += ", \"ts_us\": " + std::to_string(e.start_us);
    out += ", \"dur_us\": " + std::to_string(e.duration_us);
  }
  out += ", ";
  append_args(out, e);
  out += "}";
}

}  // namespace

std::string Tracer::to_trace_event_json() const {
  const std::vector<TraceEvent> events = sorted_events(this->events());
  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    append_event(out, events[i], /*chrome_format=*/true);
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "]\n}\n";
  return out;
}

std::string Tracer::to_jsonl() const {
  const std::vector<TraceEvent> events = sorted_events(this->events());
  std::string out;
  for (const TraceEvent& e : events) {
    append_event(out, e, /*chrome_format=*/false);
    out += "\n";
  }
  return out;
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed (see registry note)
  return *tracer;
}

Span::Span(Tracer& tracer, std::string_view name, std::string_view category) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  event_.name = name;
  event_.category = category;
  event_.tid = logical_thread_id();
  event_.start_us = tracer.now_us();
}

void Span::arg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(std::string(key), std::string(value));
}

void Span::arg(std::string_view key, std::uint64_t value) {
  arg(key, std::string_view(std::to_string(value)));
}

void Span::arg(std::string_view key, double value) {
  arg(key, std::string_view(json_number(value)));
}

void Span::finish() {
  if (tracer_ == nullptr) return;
  const std::uint64_t end_us = tracer_->now_us();
  event_.duration_us = end_us > event_.start_us ? end_us - event_.start_us : 0;
  tracer_->record(std::move(event_));
  tracer_ = nullptr;
}

}  // namespace aarc::obs
