// Run manifests: one JSON document per run that answers "what exactly ran".
//
// A manifest captures the reproducibility envelope of a CLI invocation —
// binary version (git describe), command, workload, seed, every option that
// influenced the run — together with the final metrics snapshot.  Written by
// `aarc_cli --metrics-out <file>`; schema documented in doc/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace aarc::obs {

/// The version stamp baked into the binary at configure time
/// (`git describe --always --dirty`), or "unknown" outside a git checkout.
std::string git_describe();

/// Everything needed to say "this is the run that produced these numbers".
struct RunManifest {
  std::string tool = "aarc_cli";
  std::string version = git_describe();
  std::string command;   ///< CLI subcommand, e.g. "schedule"
  std::string workload;  ///< workload name, empty if not applicable
  std::uint64_t seed = 0;
  /// Flat key/value list of the options that shaped the run, in the order
  /// they were added (stable for a given CLI version).
  std::vector<std::pair<std::string, std::string>> options;

  void add_option(std::string key, std::string value) {
    options.emplace_back(std::move(key), std::move(value));
  }
  void add_option(std::string key, std::uint64_t value) {
    options.emplace_back(std::move(key), std::to_string(value));
  }
  void add_option(std::string key, double value) {
    options.emplace_back(std::move(key), json_number(value));
  }

  /// The manifest document: run header + "metrics" object from `snapshot`.
  std::string to_json(const MetricsSnapshot& snapshot) const;
};

}  // namespace aarc::obs
