#include "obs/manifest.h"

namespace aarc::obs {

std::string git_describe() {
#ifdef AARC_GIT_DESCRIBE
  return AARC_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string RunManifest::to_json(const MetricsSnapshot& snapshot) const {
  std::string out = "{\n";
  const auto field = [&out](std::string_view key, std::string_view value,
                            bool trailing_comma = true) {
    out += "  ";
    append_json_string(out, key);
    out += ": ";
    append_json_string(out, value);
    if (trailing_comma) out += ",";
    out += "\n";
  };
  field("tool", tool);
  field("version", version);
  field("command", command);
  field("workload", workload);
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"options\": {";
  for (std::size_t i = 0; i < options.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n    ";
    append_json_string(out, options[i].first);
    out += ": ";
    append_json_string(out, options[i].second);
  }
  out += options.empty() ? "},\n" : "\n  },\n";
  out += "  \"metrics\": ";
  // Indent the nested snapshot object to keep the document readable.
  const std::string nested = snapshot.to_json(2);
  for (std::size_t i = 0; i < nested.size(); ++i) {
    out.push_back(nested[i]);
    if (nested[i] == '\n' && i + 1 < nested.size()) out += "  ";
  }
  out += "\n}\n";
  return out;
}

}  // namespace aarc::obs
