// The metric name catalog: every stable metric name the framework emits.
//
// Names are the contract between the instrumented code, the exported run
// manifests, and doc/OBSERVABILITY.md.  All three must agree, so the names
// live here exactly once: instrumentation sites reference the constants,
// and the `check_docs` tool (wired as a CTest) verifies the documentation
// against `metric_catalog()` in both directions — an undocumented metric or
// a documented-but-removed metric fails the build's test stage.
//
// Naming convention: `<layer>.<noun>[_<unit>]_total` for counters,
// `<layer>.<noun>[_<unit>]` for gauges and histograms.  Labeled series
// append `{key=value}` to the base name (see obs::labeled); only base names
// are catalogued.
#pragma once

#include <string_view>
#include <vector>

namespace aarc::obs {

/// How a catalogued metric behaves (mirrors the registry's metric classes).
enum class MetricKind { Counter, Gauge, Histogram };

struct MetricInfo {
  const char* name;   ///< stable base name (no labels)
  MetricKind kind;
  const char* unit;   ///< "1" for dimensionless counts
  const char* labels; ///< comma-separated label keys, "" when unlabeled
  const char* help;
};

/// Every metric the framework can emit, name-sorted.  The single source of
/// truth for doc/OBSERVABILITY.md (enforced by tools/check_docs).
const std::vector<MetricInfo>& metric_catalog();

/// True when `name` (labels stripped) is in the catalog.
bool is_catalogued_metric(std::string_view name);

// -- platform: the simulated serverless executor ---------------------------
namespace metric {
inline constexpr const char* kPlatformExecutions = "platform.executions_total";
inline constexpr const char* kPlatformInvocationAttempts =
    "platform.invocation_attempts_total";
inline constexpr const char* kPlatformRetries = "platform.retries_total";
inline constexpr const char* kPlatformTimeouts = "platform.timeouts_total";
inline constexpr const char* kPlatformTransientFaults =
    "platform.transient_faults_total";
inline constexpr const char* kPlatformOomFailures = "platform.oom_failures_total";
inline constexpr const char* kPlatformColdStarts = "platform.cold_starts_total";

// -- search: the probe gateway, batch engine and probe cache ----------------
inline constexpr const char* kSearchProbes = "search.probes_total";
inline constexpr const char* kSearchProbesExecuted = "search.probes_executed_total";
inline constexpr const char* kSearchCacheHits = "search.cache_hits_total";
inline constexpr const char* kSearchCacheMisses = "search.cache_misses_total";
inline constexpr const char* kSearchProbeExecutions = "search.probe_executions_total";
inline constexpr const char* kSearchProbeWallSeconds = "search.probe_wall_seconds";
inline constexpr const char* kSearchBatches = "search.batches_total";
inline constexpr const char* kSearchBatchSize = "search.batch_size";
inline constexpr const char* kSearchQueueDepth = "search.queue_depth";
inline constexpr const char* kSearchWorkerProbes = "search.worker_probes_total";
inline constexpr const char* kSearchWorkerBusySeconds =
    "search.worker_busy_seconds_total";
inline constexpr const char* kProbeBatchLanes = "probe.batch.lanes_total";
inline constexpr const char* kProbeBatchKernelCalls =
    "probe.batch.kernel_calls_total";
inline constexpr const char* kProbeBatchScalarFallbacks =
    "probe.batch.scalar_fallbacks_total";

// -- slo: probabilistic SLO verdicts (search/slo.h) -------------------------
inline constexpr const char* kSloChecks = "slo.checks_total";
inline constexpr const char* kSloAccepts = "slo.accepts_total";
inline constexpr const char* kSloRejects = "slo.rejects_total";
inline constexpr const char* kSloInsufficientSamples =
    "slo.insufficient_samples_total";
inline constexpr const char* kSloReplicates = "slo.replicates_total";

// -- serving: the discrete-event request-stream simulator -------------------
inline constexpr const char* kServingRequests = "serving.requests_total";
inline constexpr const char* kServingRequestFailures =
    "serving.request_failures_total";
inline constexpr const char* kServingRequestLatencySeconds =
    "serving.request_latency_seconds";
inline constexpr const char* kServingColdStarts = "serving.cold_starts_total";
inline constexpr const char* kServingWarmStarts = "serving.warm_starts_total";
inline constexpr const char* kServingRetries = "serving.retries_total";
inline constexpr const char* kServingTimeouts = "serving.timeouts_total";
inline constexpr const char* kServingRejectedRequests =
    "serving.rejected_requests_total";
inline constexpr const char* kServingAutoscaleUp = "serving.autoscale_up_total";
inline constexpr const char* kServingAutoscaleDown = "serving.autoscale_down_total";
inline constexpr const char* kServingEngineEvents = "serving.engine_events_total";

// -- chaos: the incident engine (time-windowed fault episodes) --------------
inline constexpr const char* kChaosIncidents = "chaos.incidents_total";
inline constexpr const char* kChaosModulatedAttempts =
    "chaos.modulated_attempts_total";

// -- resilience: graceful degradation in the serving path -------------------
inline constexpr const char* kResilienceBreakerOpens =
    "resilience.breaker_opens_total";
inline constexpr const char* kResilienceBreakerFastfails =
    "resilience.breaker_fastfail_requests_total";
inline constexpr const char* kResilienceHedges = "resilience.hedges_total";
inline constexpr const char* kResilienceHedgeWins = "resilience.hedge_wins_total";
inline constexpr const char* kResilienceShedRequests =
    "resilience.shed_requests_total";
inline constexpr const char* kResilienceTimeToRecoverySeconds =
    "resilience.time_to_recovery_seconds";
inline constexpr const char* kResiliencePostIncidentAttainment =
    "resilience.post_incident_slo_attainment";

// -- reconfig: the online reconfiguration control plane ---------------------
inline constexpr const char* kReconfigReconfigurations =
    "reconfig.reconfigurations_total";
inline constexpr const char* kReconfigDegradedFallbacks =
    "reconfig.degraded_fallbacks_total";
inline constexpr const char* kReconfigSamples = "reconfig.samples_total";
inline constexpr const char* kReconfigLagSeconds = "reconfig.lag_seconds";
inline constexpr const char* kReconfigPreSloAttainment =
    "reconfig.pre_slo_attainment";
inline constexpr const char* kReconfigPostSloAttainment =
    "reconfig.post_slo_attainment";

// -- aarc: Graph-Centric Scheduler + Priority Configurator ------------------
inline constexpr const char* kAarcSchedules = "aarc.schedules_total";
inline constexpr const char* kAarcPathsConfigured = "aarc.paths_configured_total";
inline constexpr const char* kAarcOpsAccepted = "aarc.ops_accepted_total";
inline constexpr const char* kAarcOpsReverted = "aarc.ops_reverted_total";
inline constexpr const char* kAarcTransientRetries = "aarc.transient_retries_total";

// -- baselines --------------------------------------------------------------
inline constexpr const char* kBoRuns = "bo.runs_total";
inline constexpr const char* kBoIterations = "bo.iterations_total";
inline constexpr const char* kMaffRuns = "maff.runs_total";
inline constexpr const char* kMaffRounds = "maff.rounds_total";
}  // namespace metric

}  // namespace aarc::obs
