// Scoped tracing: RAII spans that nest into a lightweight trace.
//
// A Span measures the wall time of one scope (a scheduling phase, a GP fit,
// a probe batch) and records a complete event into a Tracer when the scope
// exits.  Spans on the same thread nest naturally — the Chrome trace_event
// model reconstructs the hierarchy from (tid, ts, dur) containment — so the
// exported trace shows e.g.
//
//   aarc.schedule
//   ├── aarc.profile_base
//   ├── aarc.configure_path            (critical path)
//   │     └── search.batch ×N
//   │           └── search.probe       (per worker track)
//   └── aarc.finalize
//
// Two export formats, both documented in doc/OBSERVABILITY.md:
//   * Chrome trace_event JSON ("X" complete events) — load the file in
//     https://ui.perfetto.dev or chrome://tracing;
//   * JSONL — one event object per line, for ad-hoc jq/pandas analysis.
//
// Cost model: when the tracer is disabled (the default) constructing a Span
// is one relaxed atomic load and the destructor does nothing, so spans can
// stay compiled into hot paths.  When enabled, each span takes two
// steady_clock reads and one mutex-protected vector push.  Timestamps are
// wall-clock and therefore NOT deterministic — traces are for humans;
// nothing in the framework reads them back.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aarc::obs {

/// One completed span ("X" phase in the trace_event format).
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint32_t tid = 0;        ///< logical thread id (see logical_thread_id)
  std::uint64_t start_us = 0;   ///< microseconds since the tracer epoch
  std::uint64_t duration_us = 0;
  std::vector<std::pair<std::string, std::string>> args;  ///< string key/values
};

/// Small sequential id for the calling thread, stable for its lifetime.
/// Gives traces compact per-worker tracks instead of opaque OS thread ids.
std::uint32_t logical_thread_id();

/// An append-only event sink with a steady-clock epoch.
class Tracer {
 public:
  Tracer();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Microseconds since this tracer's construction.
  std::uint64_t now_us() const;

  /// Append one event (thread-safe).  Unconditional — Span checks enabled();
  /// direct callers (tests, manual exports) record regardless of the flag.
  void record(TraceEvent event);

  std::size_t size() const;
  std::vector<TraceEvent> events() const;
  void clear();

  /// Chrome trace_event JSON: {"displayTimeUnit": "ms", "traceEvents": [...]}.
  /// Events are sorted by (start, tid) for stable output.
  std::string to_trace_event_json() const;
  /// One event per line: {"name", "cat", "tid", "ts_us", "dur_us", "args"}.
  std::string to_jsonl() const;

  /// The process-wide tracer `aarc_cli --trace-out` enables and exports.
  static Tracer& global();

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII scoped timer; records into the tracer at scope exit.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "aarc")
      : Span(Tracer::global(), name, category) {}
  Span(Tracer& tracer, std::string_view name, std::string_view category = "aarc");
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value annotation (dropped when the tracer is disabled).
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, std::uint64_t value);
  void arg(std::string_view key, double value);

  /// Record the event now instead of at destruction (idempotent).
  void finish();

  /// False when the tracer was disabled at construction: the span is free.
  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

}  // namespace aarc::obs
