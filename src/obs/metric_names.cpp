#include "obs/metric_names.h"

#include <algorithm>

namespace aarc::obs {

const std::vector<MetricInfo>& metric_catalog() {
  using K = MetricKind;
  static const std::vector<MetricInfo> catalog = {
      {"aarc.ops_accepted_total", K::Counter, "1", "",
       "Algorithm 2 operations whose resource move was kept"},
      {"aarc.ops_reverted_total", K::Counter, "1", "",
       "Algorithm 2 operations reverted (error, SLO violation, or cost increase)"},
      {"aarc.paths_configured_total", K::Counter, "1", "",
       "paths handed to the Priority Configurator (critical path, detours, "
       "uncovered nodes)"},
      {"aarc.schedules_total", K::Counter, "1", "",
       "Graph-Centric Scheduler runs (Algorithm 1)"},
      {"aarc.transient_retries_total", K::Counter, "1", "",
       "same-configuration re-probes after a transient probe failure"},
      {"bo.iterations_total", K::Counter, "1", "",
       "Bayesian-optimization fit/acquire rounds"},
      {"bo.runs_total", K::Counter, "1", "", "Bayesian-optimization searches"},
      {"maff.rounds_total", K::Counter, "1", "",
       "MAFF coordinate-descent sweeps over the functions"},
      {"maff.runs_total", K::Counter, "1", "", "MAFF gradient-descent searches"},
      {"platform.cold_starts_total", K::Counter, "1", "",
       "invocation attempts that paid a nonzero cold-start delay"},
      {"platform.executions_total", K::Counter, "1", "",
       "end-to-end workflow executions (noisy and noise-free)"},
      {"platform.invocation_attempts_total", K::Counter, "1", "",
       "function invocation attempts started (retries included)"},
      {"platform.oom_failures_total", K::Counter, "1", "",
       "invocations that failed deterministically on out-of-memory"},
      {"platform.retries_total", K::Counter, "1", "",
       "failed attempts that were retried under the retry policy"},
      {"platform.timeouts_total", K::Counter, "1", "",
       "attempts cut off by the per-attempt invocation timeout"},
      {"platform.transient_faults_total", K::Counter, "1", "",
       "attempts that crashed on an injected transient fault"},
      {"reconfig.lag_seconds", K::Histogram, "seconds", "",
       "simulated delay between a reconfiguration trigger and its hot-swap"},
      {"reconfig.post_slo_attainment", K::Gauge, "1", "",
       "SLO attainment over the window right after the latest hot-swap"},
      {"reconfig.pre_slo_attainment", K::Gauge, "1", "",
       "SLO attainment over the window right before the latest trigger"},
      {"reconfig.reconfigurations_total", K::Counter, "1", "",
       "online reconfigurations activated (configs hot-swapped under traffic)"},
      {"reconfig.samples_total", K::Counter, "1", "",
       "billed probe samples consumed by online reconfiguration runs"},
      {"search.batch_size", K::Histogram, "1", "",
       "executed (non-cached) jobs per probe batch"},
      {"search.batches_total", K::Counter, "1", "",
       "probe batches submitted to the evaluation engine"},
      {"search.cache_hits_total", K::Counter, "1", "",
       "probes answered from the probe memoization cache"},
      {"search.cache_misses_total", K::Counter, "1", "",
       "cache lookups that missed (probe executed on the platform)"},
      {"search.probe_executions_total", K::Counter, "1", "",
       "platform executions consumed by probes (re-samples included)"},
      {"search.probe_wall_seconds", K::Histogram, "seconds", "",
       "billed wall time per executed probe (re-samples summed)"},
      {"search.probes_executed_total", K::Counter, "1", "",
       "probes that consumed at least one platform execution (billed samples)"},
      {"search.probes_total", K::Counter, "1", "",
       "probes committed to search traces (cache hits included)"},
      {"search.queue_depth", K::Gauge, "1", "",
       "jobs of the probe batch currently being executed (0 when idle)"},
      {"search.worker_busy_seconds_total", K::Gauge, "seconds", "worker",
       "wall time each evaluation worker spent executing probes"},
      {"search.worker_probes_total", K::Counter, "1", "worker",
       "probes executed by each evaluation worker"},
      {"serving.autoscale_down_total", K::Counter, "1", "",
       "autoscaler ticks that retired idle capacity"},
      {"serving.autoscale_up_total", K::Counter, "1", "",
       "autoscaler ticks that pre-warmed capacity"},
      {"serving.cold_starts_total", K::Counter, "1", "",
       "serving invocations that provisioned a fresh container"},
      {"serving.engine_events_total", K::Counter, "1", "",
       "discrete events processed by the serving engine's calendar queue"},
      {"serving.rejected_requests_total", K::Counter, "1", "",
       "requests refused by admission control (bounded per-function queue)"},
      {"serving.request_failures_total", K::Counter, "1", "",
       "served requests that failed (OOM or retries exhausted)"},
      {"serving.request_latency_seconds", K::Histogram, "seconds", "",
       "end-to-end latency of successfully served requests"},
      {"serving.requests_total", K::Counter, "1", "",
       "workflow requests entering the serving simulator"},
      {"serving.retries_total", K::Counter, "1", "",
       "failed serving attempts that were retried"},
      {"serving.timeouts_total", K::Counter, "1", "",
       "serving attempts cut off by the invocation timeout"},
      {"serving.warm_starts_total", K::Counter, "1", "",
       "serving invocations that reused a warm container"},
  };
  return catalog;
}

bool is_catalogued_metric(std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace != std::string_view::npos) name = name.substr(0, brace);
  const auto& catalog = metric_catalog();
  return std::any_of(catalog.begin(), catalog.end(),
                     [&](const MetricInfo& m) { return name == m.name; });
}

}  // namespace aarc::obs
