#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/contracts.h"

namespace aarc::obs {

using support::expects;

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }
void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Gauge::add(double delta) {
  if (!metrics_enabled()) return;
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::record_max(double v) {
  if (!metrics_enabled()) return;
  double current = value_.load(std::memory_order_relaxed);
  while (current < v &&
         !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  expects(!bounds_.empty(), "histogram needs at least one bucket bound");
  expects(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
          "histogram bounds must be strictly ascending");
  expects(std::isfinite(bounds_.front()) && std::isfinite(bounds_.back()),
          "histogram bounds must be finite");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) {
  if (!metrics_enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      if (i == bounds_.size()) return bounds_.back();  // overflow bucket
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double fraction =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return lower + fraction * (bounds_[i] - lower);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
}

std::vector<double> default_latency_buckets() {
  std::vector<double> bounds;
  bounds.reserve(24);
  double edge = 0.001;
  for (int i = 0; i < 24; ++i) {
    bounds.push_back(edge);
    edge *= 1.8;
  }
  return bounds;
}

std::vector<double> default_size_buckets() {
  std::vector<double> bounds;
  for (double edge = 1.0; edge <= 4096.0; edge *= 2.0) bounds.push_back(edge);
  return bounds;
}

std::string labeled(std::string_view base, std::string_view key,
                    std::string_view value) {
  std::string out;
  out.reserve(base.size() + key.size() + value.size() + 3);
  out.append(base);
  out.push_back('{');
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('}');
  return out;
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double MetricsSnapshot::value_or(std::string_view name, double fallback) const {
  const MetricSample* m = find(name);
  return m == nullptr ? fallback : m->value;
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double v) {
  expects(std::isfinite(v), "JSON numbers must be finite");
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string MetricsSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  const std::string pad2 = pad + pad;
  const char* nl = indent > 0 ? "\n" : "";
  std::string out = "{";
  out += nl;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const MetricSample& m = metrics[i];
    out += pad;
    append_json_string(out, m.name);
    out += ": ";
    if (m.kind == MetricKind::Histogram) {
      out += "{";
      out += nl;
      out += pad2 + "\"count\": " + json_number(m.value) + "," + nl;
      out += pad2 + "\"sum\": " + json_number(m.sum) + "," + nl;
      out += pad2 + "\"p50\": " + json_number(m.p50) + "," + nl;
      out += pad2 + "\"p95\": " + json_number(m.p95) + "," + nl;
      out += pad2 + "\"p99\": " + json_number(m.p99) + "," + nl;
      out += pad2 + "\"bounds\": [";
      for (std::size_t b = 0; b < m.bounds.size(); ++b) {
        if (b > 0) out += ", ";
        out += json_number(m.bounds[b]);
      }
      out += "],";
      out += nl;
      out += pad2 + "\"buckets\": [";
      for (std::size_t b = 0; b < m.bucket_counts.size(); ++b) {
        if (b > 0) out += ", ";
        out += json_number(static_cast<double>(m.bucket_counts[b]));
      }
      out += "]";
      out += nl;
      out += pad + "}";
    } else {
      out += json_number(m.value);
    }
    if (i + 1 < metrics.size()) out += ",";
    out += nl;
  }
  out += "}";
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  expects(gauges_.count(name) == 0 && histograms_.count(name) == 0,
          "metric name already registered with a different kind");
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  expects(counters_.count(name) == 0 && histograms_.count(name) == 0,
          "metric name already registered with a different kind");
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  expects(counters_.count(name) == 0 && gauges_.count(name) == 0,
          "metric name already registered with a different kind");
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.metrics.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample m;
    m.name = name;
    m.kind = MetricKind::Counter;
    m.value = static_cast<double>(c->value());
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample m;
    m.name = name;
    m.kind = MetricKind::Gauge;
    m.value = g->value();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample m;
    m.name = name;
    m.kind = MetricKind::Histogram;
    m.value = static_cast<double>(h->count());
    m.sum = h->sum();
    m.p50 = h->quantile(0.50);
    m.p95 = h->quantile(0.95);
    m.p99 = h->quantile(0.99);
    m.bounds = h->bounds();
    m.bucket_counts = h->bucket_counts();
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return snap;
}

std::vector<std::string> MetricsRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) out.push_back(name);
  for (const auto& [name, g] : gauges_) out.push_back(name);
  for (const auto& [name, h] : histograms_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed:
  return *registry;  // instrumented statics may outlive function-local statics
}

}  // namespace aarc::obs
