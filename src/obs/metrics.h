// The metrics registry: counters, gauges and fixed-bucket histograms.
//
// Design constraints, in priority order:
//
//   1. Write-only.  Nothing in the framework ever reads a metric to make a
//      decision, so instrumentation cannot perturb search results — a run
//      with metrics disabled is bit-identical to one with metrics enabled
//      (tested by tests/obs/instrumentation_test.cpp).
//   2. Cheap enough for the probe-batch hot path.  Counter::inc is one
//      relaxed atomic fetch-add behind one relaxed flag load — no locks, no
//      allocation (asserted by a release-mode micro-bench guard in
//      tests/obs/metrics_test.cpp).  Name lookup takes a mutex, so hot
//      paths resolve their handles once and keep the references; metric
//      objects have stable addresses for the registry's lifetime.
//   3. Thread-safe.  Counters/gauges/histogram buckets are atomics; the
//      registry map is mutex-protected; concurrent increments from the
//      ThreadPool workers never lose updates.
//
// The process-wide default registry (MetricsRegistry::global()) aggregates
// every instrumented component; `aarc_cli --metrics-out` snapshots it into
// the run manifest.  Metric names are catalogued in obs/metric_names.h —
// use the constants there, not ad-hoc strings.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metric_names.h"

namespace aarc::obs {

/// Global metrics switch (default on).  When off, increments and observes
/// are dropped at the instrumentation site; registration and reads still
/// work.  Purely an overhead knob — results never depend on it.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (metrics_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A double-valued level: last-set value, accumulated sum, or running max.
class Gauge {
 public:
  void set(double v) {
    if (metrics_enabled()) value_.store(v, std::memory_order_relaxed);
  }
  /// Atomic add (CAS loop; contention on gauges is rare by construction).
  void add(double delta);
  /// Raise to `v` if larger.
  void record_max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with lock-free observation.
///
/// `upper_bounds` are the ascending, finite inclusive upper edges; one
/// overflow bucket is implicit.  Quantiles interpolate linearly inside the
/// containing bucket (lower edge of the first bucket is 0 — every observed
/// quantity here is non-negative); a quantile landing in the overflow
/// bucket reports the largest finite bound.  Resolution is therefore the
/// bucket width — pick bounds to match (see default_latency_buckets).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// q in [0, 1]; 0 when the histogram is empty.
  double quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (overflow last).
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// 24 exponential bounds from 1 ms to ~2400 s — wide enough for both probe
/// wall times and serving latencies across every built-in workload.
std::vector<double> default_latency_buckets();
/// 1, 2, 4, ..., 4096: batch/queue size style counts.
std::vector<double> default_size_buckets();

/// Full name of one labeled series: "base{key=value}".
std::string labeled(std::string_view base, std::string_view key,
                    std::string_view value);

/// Point-in-time copy of one metric.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;  ///< counter / gauge value; histogram count
  // Histogram-only detail:
  double sum = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
};

/// Name-sorted snapshot of a whole registry.
struct MetricsSnapshot {
  std::vector<MetricSample> metrics;

  const MetricSample* find(std::string_view name) const;
  double value_or(std::string_view name, double fallback) const;
  /// Stable JSON object: {"metric.name": value | {histogram object}, ...}.
  std::string to_json(int indent = 2) const;
};

class MetricsRegistry {
 public:
  /// Find-or-create by name.  Registering one name as two different kinds
  /// is a contract violation.  Returned references stay valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` applies on first registration only.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  MetricsSnapshot snapshot() const;
  std::vector<std::string> names() const;
  /// Zero every value, keep registrations (tests and benches between runs).
  void reset();

  /// The process-wide registry every instrumented component writes to.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Append `text` to `out` as a quoted JSON string (standard escapes).
void append_json_string(std::string& out, std::string_view text);
/// Format a double as a JSON number (finite; integers print without ".0").
std::string json_number(double v);

}  // namespace aarc::obs
