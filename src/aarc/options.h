// Tunables of the AARC framework (Algorithms 1 and 2).
//
// Where the paper leaves a knob symbolic (FUNC_TRIAL, MAX_TRAIL, the step
// unit) the default here is what we calibrated the reproduction with; every
// choice is listed in DESIGN.md §5 and exercised by the ablation benches.
#pragma once

#include <cstddef>
#include <cstdint>

#include "search/slo.h"

namespace aarc::core {

/// How the initial deallocation step of an operation is chosen.
enum class StepPolicy {
  /// Half of the headroom between the current value and the grid minimum
  /// (in grid units).  Scale-free: big for over-provisioned base configs,
  /// small near the floor.
  ProportionalHeadroom,
  /// A fixed number of grid units regardless of the current value
  /// (ablation: slower but simpler).
  FixedUnits,
};

/// Algorithm 2 knobs.
struct ConfiguratorOptions {
  /// FUNC_TRIAL: backoff budget per operation; each revert halves the step
  /// and burns one trial, trial 0 removes the op from the queue.
  std::size_t func_trial = 4;

  /// MAX_TRAIL: maximum operations popped (== samples spent) per path.
  std::size_t max_trail = 100;

  StepPolicy step_policy = StepPolicy::ProportionalHeadroom;
  /// For ProportionalHeadroom: fraction of the headroom used as first step.
  double initial_step_fraction = 0.5;
  /// For FixedUnits: the constant step, in grid units.
  std::size_t fixed_step_units = 8;

  /// Ablation: when true the queue degenerates to FIFO (all accepted ops
  /// re-enter at equal priority) instead of cost-reduction ordering.
  bool fifo_priority = false;

  /// Safety margin on the path SLO check: an op is reverted when the
  /// measured path runtime exceeds slo * (1 - margin).  A small margin keeps
  /// the final configuration SLO-compliant under execution noise.
  double slo_safety_margin = 0.05;

  /// An accepted op whose cost reduction fell below this fraction of the
  /// function's cost is not re-enqueued (diminishing-returns pruning; keeps
  /// the sample count near the paper's without changing the optimum found).
  double min_gain_fraction = 0.10;

  /// When true the step also halves after an accepted deallocation, so the
  /// per-op trajectory is a geometric refinement (probe count ~log2 of the
  /// headroom).  When false only reverts shrink the step, as in the paper's
  /// narrowest reading of Algorithm 2 — at the price of roughly one full
  /// backoff cascade (FUNC_TRIAL reverts) per operation.  The ablation bench
  /// compares both.
  bool halve_step_on_accept = true;

  /// On a hostile platform (platform/faults.h) a probe can fail transiently
  /// — a crash or timeout, not a property of the configuration.  Algorithm
  /// 2's revert path treats any error as "this move was bad": reverting and
  /// halving the step on noise abandons good moves.  When a probe fails
  /// transiently (no OOM) the configurator instead re-probes the *same*
  /// configuration up to this many times (each re-probe burns MAX_TRAIL
  /// budget) before falling back to the genuine revert-and-halve path.
  /// 0 restores the paper's behavior: every error reverts.
  std::size_t transient_probe_retries = 2;

  /// Probabilistic SLO bound (search/slo.h, doc/SLO.md) applied by every
  /// accept/revert verdict: the per-path and end-to-end SLO checks, and the
  /// dual mode's cost check.  The default (mean, confidence 1.0) is the
  /// paper's single-sample point check, bit-identical to every earlier
  /// release.  A non-legacy bound makes each verdict probe the platform
  /// `slo.min_replicates()` times (every replicate billed) and accept only
  /// when the empirical distribution clears the margin-adjusted limit.
  search::SloBound slo{};

  /// Cost-bounded dual mode: when > 0 the configurator minimizes latency
  /// subject to "total workflow cost ≤ cost_bound" (with `slo`'s
  /// metric/confidence applied to the cost distribution) instead of
  /// minimizing cost subject to the SLO.  Deallocation rounds accept any
  /// move that reduces total cost — prioritized by cost saved per second of
  /// path latency given up — and stop as soon as the cost verdict clears
  /// the bound, so the accepted configuration is the fastest one the budget
  /// allowed the search to reach.  0 (the default) disables the mode.
  double cost_bound = 0.0;

  /// Extension (off by default to stay close to the paper): after the
  /// deallocation queue drains, run a short *allocate-direction* polish
  /// round.  Greedy deallocation only ever moves down the grid, so a large
  /// accepted step can overshoot a cost minimum (runtime grows faster than
  /// the rate shrinks) with no way back up; the polish round proposes small
  /// step-ups and keeps those that reduce cost.  Adding resources can never
  /// violate the SLO (runtime is non-increasing in both resources).
  bool polish_allocate = false;
  /// Initial step (grid units) of the polish round's allocate ops.
  std::size_t polish_step_units = 4;
};

/// Algorithm 1 knobs.
struct SchedulerOptions {
  ConfiguratorOptions configurator;

  /// Seed for the profiling/search executions (sample noise).
  std::uint64_t seed = 2025;

  /// Evaluator probe re-sampling (see search::ResampleOptions): extra
  /// executions allowed per probe when it fails or is an outlier.  0 keeps
  /// one execution per probe as in the paper.
  std::size_t probe_resamples = 0;
  /// Outlier threshold for probe re-sampling (0 disables the outlier check).
  double probe_outlier_factor = 0.0;

  /// Worker threads for the probe evaluator (search::EvaluatorOptions).
  /// Algorithm 2's queue is inherently sequential, so AARC itself gains
  /// little from > 1, but the setting also drives the input-aware engine's
  /// concurrent per-class searches and keeps one knob across the stack.
  /// Results are identical for every value.
  std::size_t evaluator_threads = 1;
  /// Probe memoization (search::EvaluatorOptions::probe_cache): revisited
  /// configurations — revert/halving loops re-probing an earlier state —
  /// are served from cache instead of billed again.
  bool probe_cache = false;

  /// When true, nodes covered by neither the critical path nor any detour
  /// (possible with multiple sources/sinks) are configured as single-node
  /// paths with their schedule slack as budget; when false they keep the
  /// base configuration.
  bool configure_uncovered_nodes = true;
};

}  // namespace aarc::core
