#include "aarc/priority_configurator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "aarc/operation.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "support/contracts.h"
#include "support/log.h"

namespace aarc::core {

using support::expects;

namespace {

double path_runtime(std::span<const double> function_runtimes,
                    const std::vector<dag::NodeId>& path_nodes) {
  double total = 0.0;
  for (dag::NodeId id : path_nodes) total += function_runtimes[id];
  return total;
}

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Which way a round moves resources: Algorithm 2 proper deallocates; the
/// optional polish round allocates (see ConfiguratorOptions::polish_allocate).
enum class Direction { Deallocate, Allocate };

}  // namespace

PriorityConfigurator::PriorityConfigurator(const platform::ConfigGrid& grid,
                                           ConfiguratorOptions options)
    : grid_(grid), options_(options) {
  expects(options_.func_trial >= 1, "FUNC_TRIAL must be >= 1");
  expects(options_.max_trail >= 1, "MAX_TRAIL must be >= 1");
  expects(options_.initial_step_fraction > 0.0 && options_.initial_step_fraction <= 1.0,
          "initial_step_fraction must be in (0, 1]");
  expects(options_.fixed_step_units >= 1, "fixed_step_units must be >= 1");
  expects(options_.polish_step_units >= 1, "polish_step_units must be >= 1");
  expects(options_.slo_safety_margin >= 0.0 && options_.slo_safety_margin < 1.0,
          "slo_safety_margin must be in [0, 1)");
  expects(options_.cost_bound >= 0.0, "cost_bound must be non-negative");
  options_.slo.validate();
}

std::size_t PriorityConfigurator::initial_step_units(double current_value,
                                                     ResourceType type) const {
  if (options_.step_policy == StepPolicy::FixedUnits) return options_.fixed_step_units;
  const support::ValueGrid& axis =
      type == ResourceType::Cpu ? grid_.cpu() : grid_.memory();
  const std::size_t headroom = axis.index_of(current_value);  // units above grid min
  const auto step = static_cast<std::size_t>(
      std::floor(static_cast<double>(headroom) * options_.initial_step_fraction));
  return std::max<std::size_t>(1, step);
}

namespace {

struct RoundState {
  std::size_t count = 0;  // billed verdicts spent across all rounds (vs MAX_TRAIL)
  std::vector<double> accepted_cost;
  // Dual mode (cost_bound > 0) bookkeeping: total workflow cost of the last
  // accepted configuration, and whether its cost verdict already clears the
  // bound (always starts false under a probabilistic bound — the goal must
  // be *proven* by a replicate distribution, never assumed).
  double accepted_total_cost = 0.0;
  bool cost_goal_met = false;
};

/// One verdict's worth of evidence: a single probe under the legacy bound,
/// `replicates` fresh draws plus their representative otherwise.
struct Evidence {
  search::ProbeResult eval;
  std::vector<search::ProbeResult> reps;  // empty under the legacy bound
};

struct ConfiguratorMetrics {
  obs::Counter& paths_configured;
  obs::Counter& ops_accepted;
  obs::Counter& ops_reverted;
  obs::Counter& transient_retries;
};

ConfiguratorMetrics& configurator_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static ConfiguratorMetrics m{
      reg.counter(obs::metric::kAarcPathsConfigured),
      reg.counter(obs::metric::kAarcOpsAccepted),
      reg.counter(obs::metric::kAarcOpsReverted),
      reg.counter(obs::metric::kAarcTransientRetries),
  };
  return m;
}

}  // namespace

PathConfigOutcome PriorityConfigurator::configure_path(
    search::Evaluator& evaluator, const std::vector<dag::NodeId>& path_nodes,
    double path_slo, platform::WorkflowConfig& config,
    const search::ProbeResult& baseline) const {
  expects(!path_nodes.empty(), "cannot configure an empty path");
  expects(path_slo > 0.0, "path SLO must be positive");
  expects(config.size() == evaluator.workflow().function_count(),
          "config size must match the workflow");
  expects(baseline.function_runtimes.size() == config.size(),
          "baseline must evaluate the same workflow");

  ConfiguratorMetrics& metrics = configurator_metrics();
  metrics.paths_configured.inc();
  obs::Span path_span("aarc.configure_path", "aarc");
  path_span.arg("path_nodes", static_cast<std::uint64_t>(path_nodes.size()));

  const double effective_slo = path_slo * (1.0 - options_.slo_safety_margin);
  const double effective_e2e_slo =
      evaluator.slo_seconds() * (1.0 - options_.slo_safety_margin);

  PathConfigOutcome outcome;
  outcome.accepted_runtimes.assign(baseline.function_runtimes.begin(),
                                   baseline.function_runtimes.end());
  outcome.accepted_path_runtime = path_runtime(baseline.function_runtimes, path_nodes);

  RoundState state;
  // Last observed (accepted) cost per function, used for the "cost
  // increases" check of line 14 and for priorities.
  state.accepted_cost.assign(baseline.function_costs.begin(),
                             baseline.function_costs.end());

  // Probabilistic bound (doc/SLO.md): every verdict probes `replicates`
  // times and judges the empirical distribution; the legacy default keeps
  // the paper's single-sample point checks bit-identical.
  const bool probabilistic = !options_.slo.is_legacy();
  const std::size_t replicates = options_.slo.min_replicates();
  // Dual mode: minimize latency subject to total cost <= cost_bound.
  const bool dual = options_.cost_bound > 0.0;
  for (double c : state.accepted_cost) state.accepted_total_cost += c;
  if (dual && !probabilistic) {
    state.cost_goal_met = !(state.accepted_total_cost > options_.cost_bound);
  }

  // Gather the evidence for one verdict at the current `config`.
  auto gather = [&]() {
    Evidence ev;
    if (!probabilistic) {
      ev.eval = evaluator.probe(config);
    } else {
      ev.reps = evaluator.probe_replicates(config, replicates);
      ev.eval = search::Evaluator::representative(ev.reps);
    }
    return ev;
  };

  // The dual mode's goal test: does the cost distribution (or, under the
  // legacy bound, the representative's point cost) clear the bound?  The
  // SLO safety margin guards latency promises, not the budget, so the bound
  // is applied raw.
  auto cost_within_bound = [&](const Evidence& ev) {
    if (!probabilistic) return !(ev.eval.sample.cost > options_.cost_bound);
    search::LatencyDistribution cost_dist;
    for (const search::ProbeResult& r : ev.reps) {
      cost_dist.add(r.sample.failed ? kInfinity : r.sample.cost);
    }
    return search::slo_verdict(cost_dist, options_.slo, options_.cost_bound) ==
           search::SloVerdict::Accept;
  };

  auto run_round = [&](Direction direction, std::size_t forced_step) {
    // Line 3-10: seed the queue with a cpu and a memory op per function.
    OperationQueue queue;
    for (dag::NodeId id : path_nodes) {
      for (ResourceType type : {ResourceType::Cpu, ResourceType::Memory}) {
        const double current =
            type == ResourceType::Cpu ? config[id].vcpu : config[id].memory_mb;
        Operation op;
        op.node = id;
        op.type = type;
        op.step = forced_step != 0 ? forced_step : initial_step_units(current, type);
        op.trail = options_.func_trial;
        queue.push(op, kInfinity);
      }
    }

    // Line 11: loop until the queue drains or MAX_TRAIL verdicts are spent.
    // The dual mode's deallocation round additionally stops the moment the
    // cost verdict clears the bound: the accepted configuration is then the
    // fastest one the descent visited, and further deallocation would only
    // trade latency for budget already met.
    while (!queue.empty() && state.count < options_.max_trail &&
           !(dual && direction == Direction::Deallocate && state.cost_goal_met)) {
      Operation op = queue.pop();

      // deallocate(op) / allocate(op): move the resource by `step` units.
      const support::ValueGrid& axis =
          op.type == ResourceType::Cpu ? grid_.cpu() : grid_.memory();
      double& value = op.type == ResourceType::Cpu ? config[op.node].vcpu
                                                   : config[op.node].memory_mb;
      const double previous = value;
      const double proposed = direction == Direction::Deallocate
                                  ? axis.step_down(previous, op.step)
                                  : axis.step_up(previous, op.step);
      if (proposed == previous) {
        // Grid boundary reached: the op is exhausted; drop without a probe.
        continue;
      }
      value = proposed;

      // MAX_TRAIL is denominated in billed verdicts: a probe answered from
      // the memoization cache consumed no platform execution and must not
      // burn budget, so the count moves only on executed probes.  Under a
      // probabilistic bound one verdict costs one MAX_TRAIL unit but bills
      // `replicates` samples — the budget bounds decisions, the trace bills
      // executions.
      Evidence ev = gather();
      if (!ev.eval.sample.cache_hit) ++state.count;
      outcome.samples_used += probabilistic ? replicates : 1;

      // Distinguish "the platform hiccuped" from "this move was bad": a
      // transient failure (crash/timeout, no OOM) is re-probed at the same
      // configuration — burning MAX_TRAIL budget — instead of reverting and
      // halving the step on what is merely noise.  OOM is deterministic and
      // falls straight through to the revert path.
      for (std::size_t left = options_.transient_probe_retries;
           left > 0 && ev.eval.sample.failed && ev.eval.sample.transient &&
           state.count < options_.max_trail;
           --left) {
        ev = gather();
        if (!ev.eval.sample.cache_hit) ++state.count;
        outcome.samples_used += probabilistic ? replicates : 1;
        ++outcome.transient_retries;
        metrics.transient_retries.inc();
      }
      const search::ProbeResult& eval = ev.eval;

      const double new_path_runtime = path_runtime(eval.function_runtimes, path_nodes);
      const double previous_cost = state.accepted_cost[op.node];
      const double new_cost = eval.function_costs[op.node];

      const bool error = eval.sample.failed;

      // The SLO verdict.  Dual mode inverts the roles — latency becomes the
      // objective and the budget the constraint — so no SLO check applies;
      // the legacy bound keeps the paper's point comparisons verbatim; a
      // probabilistic bound judges the per-replicate path and end-to-end
      // latency distributions against the margin-adjusted limits (failed
      // replicates contribute +inf, so they count as violations at any
      // percentile they reach).
      bool slo_violated = false;
      if (dual) {
        // no SLO constraint in dual mode
      } else if (!probabilistic) {
        slo_violated =
            new_path_runtime > effective_slo || eval.sample.makespan > effective_e2e_slo;
      } else {
        search::LatencyDistribution path_dist;
        search::LatencyDistribution e2e_dist;
        for (const search::ProbeResult& r : ev.reps) {
          path_dist.add(r.sample.failed ? kInfinity
                                        : path_runtime(r.function_runtimes, path_nodes));
          e2e_dist.add(r.sample.failed ? kInfinity : r.sample.makespan);
        }
        slo_violated =
            search::slo_verdict(path_dist, options_.slo, effective_slo) !=
                search::SloVerdict::Accept ||
            search::slo_verdict(e2e_dist, options_.slo, effective_e2e_slo) !=
                search::SloVerdict::Accept;
      }

      // The accept/revert decision and the priority of a kept move.  Cost
      // comparisons always use the representative replicate: the SLO is the
      // *guarantee* (judged on the distribution above); cost is the
      // *objective*, where a deterministic point estimate keeps the queue
      // ordering stable.
      bool revert = false;
      double accept_priority = 0.0;
      bool prune_on_accept = false;
      if (dual) {
        if (direction == Direction::Deallocate) {
          // Accept any move that strictly reduces total workflow cost,
          // prioritized by cost saved per second of path latency given up.
          const double reduced_total = state.accepted_total_cost - eval.sample.cost;
          revert = error || !(reduced_total > 0.0);
          const double latency_given_up =
              std::max(0.0, new_path_runtime - outcome.accepted_path_runtime);
          accept_priority = reduced_total / (1.0 + latency_given_up);
        } else {
          // Latency buy-back: keep a step-up only when it speeds the path
          // up *and* the cost verdict stays within the bound.
          const double latency_gain = outcome.accepted_path_runtime - new_path_runtime;
          revert = error || !(latency_gain > 0.0) || !cost_within_bound(ev);
          accept_priority = latency_gain;
        }
      } else {
        const bool cost_increased = !(new_cost < previous_cost);
        revert = error || slo_violated || cost_increased;
        const double reduced_cost = previous_cost - new_cost;
        accept_priority = options_.fifo_priority ? 1.0 : reduced_cost;
        prune_on_accept = reduced_cost < options_.min_gain_fraction * previous_cost;
      }

      if (revert) {
        // Line 14-18: revert, back off exponentially, burn a trial.  A
        // revert at the minimum step cannot be refined further — retrying
        // the same grid move would only re-measure noise — so the op is
        // dropped.
        value = previous;
        ++outcome.ops_reverted;
        metrics.ops_reverted.inc();
        expects(op.trail >= 1, "reverted op must have had a trial left");
        op.trail = op.step == 1 ? 0 : op.trail - 1;
        op.step = std::max<std::size_t>(1, op.step / 2);
        if (op.trail > 0) queue.push(op, 0.0);
        continue;
      }

      // Line 19-22: keep the move; the priority is the achieved cost
      // reduction (FIFO ablation flattens it to a constant; dual mode the
      // direction-specific gain computed above).
      state.accepted_cost.assign(eval.function_costs.begin(), eval.function_costs.end());
      outcome.accepted_runtimes.assign(eval.function_runtimes.begin(),
                                       eval.function_runtimes.end());
      outcome.accepted_path_runtime = new_path_runtime;
      ++outcome.ops_accepted;
      metrics.ops_accepted.inc();
      if (dual) {
        state.accepted_total_cost = eval.sample.cost;
        state.cost_goal_met = cost_within_bound(ev);
      }
      if (prune_on_accept) continue;
      if (options_.halve_step_on_accept) op.step = std::max<std::size_t>(1, op.step / 2);
      queue.push(op, accept_priority);
    }
  };

  // Algorithm 2 proper: the deallocation round.
  run_round(Direction::Deallocate, 0);

  if (dual) {
    // Dual mode: once — and only if — the cost verdict cleared the bound,
    // spend the remaining budget buying latency back.  Allocate-direction
    // moves are kept only when they speed the path up and the cost verdict
    // stays within the bound, so the goal can never be un-met.
    if (state.cost_goal_met) run_round(Direction::Allocate, options_.polish_step_units);
  } else if (options_.polish_allocate) {
    // Optional extension: a short allocate-direction polish round recovers
    // overshoot past a cost minimum (see options.h).
    run_round(Direction::Allocate, options_.polish_step_units);
  }

  outcome.accepted_costs = std::move(state.accepted_cost);
  path_span.arg("samples", static_cast<std::uint64_t>(outcome.samples_used));
  path_span.arg("ops_accepted", static_cast<std::uint64_t>(outcome.ops_accepted));
  path_span.arg("ops_reverted", static_cast<std::uint64_t>(outcome.ops_reverted));
  return outcome;
}

}  // namespace aarc::core
