#include "aarc/priority_configurator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "aarc/operation.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "support/contracts.h"
#include "support/log.h"

namespace aarc::core {

using support::expects;

namespace {

double path_runtime(std::span<const double> function_runtimes,
                    const std::vector<dag::NodeId>& path_nodes) {
  double total = 0.0;
  for (dag::NodeId id : path_nodes) total += function_runtimes[id];
  return total;
}

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Which way a round moves resources: Algorithm 2 proper deallocates; the
/// optional polish round allocates (see ConfiguratorOptions::polish_allocate).
enum class Direction { Deallocate, Allocate };

}  // namespace

PriorityConfigurator::PriorityConfigurator(const platform::ConfigGrid& grid,
                                           ConfiguratorOptions options)
    : grid_(grid), options_(options) {
  expects(options_.func_trial >= 1, "FUNC_TRIAL must be >= 1");
  expects(options_.max_trail >= 1, "MAX_TRAIL must be >= 1");
  expects(options_.initial_step_fraction > 0.0 && options_.initial_step_fraction <= 1.0,
          "initial_step_fraction must be in (0, 1]");
  expects(options_.fixed_step_units >= 1, "fixed_step_units must be >= 1");
  expects(options_.polish_step_units >= 1, "polish_step_units must be >= 1");
  expects(options_.slo_safety_margin >= 0.0 && options_.slo_safety_margin < 1.0,
          "slo_safety_margin must be in [0, 1)");
}

std::size_t PriorityConfigurator::initial_step_units(double current_value,
                                                     ResourceType type) const {
  if (options_.step_policy == StepPolicy::FixedUnits) return options_.fixed_step_units;
  const support::ValueGrid& axis =
      type == ResourceType::Cpu ? grid_.cpu() : grid_.memory();
  const std::size_t headroom = axis.index_of(current_value);  // units above grid min
  const auto step = static_cast<std::size_t>(
      std::floor(static_cast<double>(headroom) * options_.initial_step_fraction));
  return std::max<std::size_t>(1, step);
}

namespace {

struct RoundState {
  std::size_t count = 0;  // billed probes spent across all rounds (vs MAX_TRAIL)
  std::vector<double> accepted_cost;
};

struct ConfiguratorMetrics {
  obs::Counter& paths_configured;
  obs::Counter& ops_accepted;
  obs::Counter& ops_reverted;
  obs::Counter& transient_retries;
};

ConfiguratorMetrics& configurator_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static ConfiguratorMetrics m{
      reg.counter(obs::metric::kAarcPathsConfigured),
      reg.counter(obs::metric::kAarcOpsAccepted),
      reg.counter(obs::metric::kAarcOpsReverted),
      reg.counter(obs::metric::kAarcTransientRetries),
  };
  return m;
}

}  // namespace

PathConfigOutcome PriorityConfigurator::configure_path(
    search::Evaluator& evaluator, const std::vector<dag::NodeId>& path_nodes,
    double path_slo, platform::WorkflowConfig& config,
    const search::ProbeResult& baseline) const {
  expects(!path_nodes.empty(), "cannot configure an empty path");
  expects(path_slo > 0.0, "path SLO must be positive");
  expects(config.size() == evaluator.workflow().function_count(),
          "config size must match the workflow");
  expects(baseline.function_runtimes.size() == config.size(),
          "baseline must evaluate the same workflow");

  ConfiguratorMetrics& metrics = configurator_metrics();
  metrics.paths_configured.inc();
  obs::Span path_span("aarc.configure_path", "aarc");
  path_span.arg("path_nodes", static_cast<std::uint64_t>(path_nodes.size()));

  const double effective_slo = path_slo * (1.0 - options_.slo_safety_margin);
  const double effective_e2e_slo =
      evaluator.slo_seconds() * (1.0 - options_.slo_safety_margin);

  PathConfigOutcome outcome;
  outcome.accepted_runtimes.assign(baseline.function_runtimes.begin(),
                                   baseline.function_runtimes.end());
  outcome.accepted_path_runtime = path_runtime(baseline.function_runtimes, path_nodes);

  RoundState state;
  // Last observed (accepted) cost per function, used for the "cost
  // increases" check of line 14 and for priorities.
  state.accepted_cost.assign(baseline.function_costs.begin(),
                             baseline.function_costs.end());

  auto run_round = [&](Direction direction, std::size_t forced_step) {
    // Line 3-10: seed the queue with a cpu and a memory op per function.
    OperationQueue queue;
    for (dag::NodeId id : path_nodes) {
      for (ResourceType type : {ResourceType::Cpu, ResourceType::Memory}) {
        const double current =
            type == ResourceType::Cpu ? config[id].vcpu : config[id].memory_mb;
        Operation op;
        op.node = id;
        op.type = type;
        op.step = forced_step != 0 ? forced_step : initial_step_units(current, type);
        op.trail = options_.func_trial;
        queue.push(op, kInfinity);
      }
    }

    // Line 11: loop until the queue drains or MAX_TRAIL probes are spent.
    while (!queue.empty() && state.count < options_.max_trail) {
      Operation op = queue.pop();

      // deallocate(op) / allocate(op): move the resource by `step` units.
      const support::ValueGrid& axis =
          op.type == ResourceType::Cpu ? grid_.cpu() : grid_.memory();
      double& value = op.type == ResourceType::Cpu ? config[op.node].vcpu
                                                   : config[op.node].memory_mb;
      const double previous = value;
      const double proposed = direction == Direction::Deallocate
                                  ? axis.step_down(previous, op.step)
                                  : axis.step_up(previous, op.step);
      if (proposed == previous) {
        // Grid boundary reached: the op is exhausted; drop without a probe.
        continue;
      }
      value = proposed;

      // MAX_TRAIL is denominated in billed samples: a probe answered from
      // the memoization cache consumed no platform execution and must not
      // burn budget, so the count moves only on executed probes.
      search::ProbeResult eval = evaluator.probe(config);
      if (!eval.sample.cache_hit) ++state.count;
      ++outcome.samples_used;

      // Distinguish "the platform hiccuped" from "this move was bad": a
      // transient failure (crash/timeout, no OOM) is re-probed at the same
      // configuration — burning MAX_TRAIL budget — instead of reverting and
      // halving the step on what is merely noise.  OOM is deterministic and
      // falls straight through to the revert path.
      for (std::size_t left = options_.transient_probe_retries;
           left > 0 && eval.sample.failed && eval.sample.transient &&
           state.count < options_.max_trail;
           --left) {
        eval = evaluator.probe(config);
        if (!eval.sample.cache_hit) ++state.count;
        ++outcome.samples_used;
        ++outcome.transient_retries;
        metrics.transient_retries.inc();
      }

      const double new_path_runtime = path_runtime(eval.function_runtimes, path_nodes);
      const double previous_cost = state.accepted_cost[op.node];
      const double new_cost = eval.function_costs[op.node];

      const bool error = eval.sample.failed;
      const bool slo_violated =
          new_path_runtime > effective_slo || eval.sample.makespan > effective_e2e_slo;
      const bool cost_increased = !(new_cost < previous_cost);

      if (error || slo_violated || cost_increased) {
        // Line 14-18: revert, back off exponentially, burn a trial.  A
        // revert at the minimum step cannot be refined further — retrying
        // the same grid move would only re-measure noise — so the op is
        // dropped.
        value = previous;
        ++outcome.ops_reverted;
        metrics.ops_reverted.inc();
        expects(op.trail >= 1, "reverted op must have had a trial left");
        op.trail = op.step == 1 ? 0 : op.trail - 1;
        op.step = std::max<std::size_t>(1, op.step / 2);
        if (op.trail > 0) queue.push(op, 0.0);
        continue;
      }

      // Line 19-22: keep the move; the priority is the achieved cost
      // reduction (FIFO ablation flattens it to a constant).
      state.accepted_cost.assign(eval.function_costs.begin(), eval.function_costs.end());
      outcome.accepted_runtimes.assign(eval.function_runtimes.begin(),
                                       eval.function_runtimes.end());
      outcome.accepted_path_runtime = new_path_runtime;
      ++outcome.ops_accepted;
      metrics.ops_accepted.inc();
      const double reduced_cost = previous_cost - new_cost;
      if (reduced_cost < options_.min_gain_fraction * previous_cost) continue;
      if (options_.halve_step_on_accept) op.step = std::max<std::size_t>(1, op.step / 2);
      queue.push(op, options_.fifo_priority ? 1.0 : reduced_cost);
    }
  };

  // Algorithm 2 proper: the deallocation round.
  run_round(Direction::Deallocate, 0);

  // Optional extension: a short allocate-direction polish round recovers
  // overshoot past a cost minimum (see options.h).
  if (options_.polish_allocate) {
    run_round(Direction::Allocate, options_.polish_step_units);
  }

  outcome.accepted_costs = std::move(state.accepted_cost);
  path_span.arg("samples", static_cast<std::uint64_t>(outcome.samples_used));
  path_span.arg("ops_accepted", static_cast<std::uint64_t>(outcome.ops_accepted));
  path_span.arg("ops_reverted", static_cast<std::uint64_t>(outcome.ops_reverted));
  return outcome;
}

}  // namespace aarc::core
