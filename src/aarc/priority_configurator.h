// Priority Configurator — Algorithm 2 of the paper.
//
// Given a path of functions and a latency budget (the end-to-end SLO for the
// critical path, a sub-SLO for detours), greedily deallocates CPU and memory
// per function through a max-priority queue of operations:
//
//   * every (function x resource) pair starts as an operation with priority
//     +infinity, step chosen by the step policy, and FUNC_TRIAL retries;
//   * popping an operation shrinks that resource by `step` grid units and
//     executes the workflow once (one sample);
//   * if the probe OOMs, the path runtime exceeds its (margin-adjusted) SLO,
//     or the operated function's cost did not decrease, the resource is
//     restored, the step halves (exponential backoff), one trial is burned,
//     and the op re-enters at priority 0 — or is dropped at trial 0;
//     a *transient* probe failure (platform crash/timeout, no OOM) is first
//     re-probed at the same configuration instead of reverting, so platform
//     hiccups don't masquerade as bad moves (transient_probe_retries);
//   * otherwise the new allocation is kept and the op re-enters with the
//     achieved cost reduction as its priority;
//   * the loop ends when the queue is empty or MAX_TRAIL samples were spent.
#pragma once

#include <vector>

#include "aarc/operation.h"
#include "aarc/options.h"
#include "dag/graph.h"
#include "platform/resource.h"
#include "search/evaluator.h"

namespace aarc::core {

/// Outcome of configuring one path.
struct PathConfigOutcome {
  std::size_t samples_used = 0;        ///< probes spent by this call
  std::size_t ops_accepted = 0;        ///< deallocations kept
  std::size_t ops_reverted = 0;        ///< deallocations undone
  std::size_t transient_retries = 0;   ///< probes re-run after transient faults
  /// Per-function observed runtimes of the last accepted state (by NodeId,
  /// full workflow length) — Algorithm 1 uses these to refresh DAG weights.
  std::vector<double> accepted_runtimes;
  /// Per-function observed costs of the last accepted state (by NodeId) —
  /// the scheduler threads these into the next path's baseline.
  std::vector<double> accepted_costs;
  /// Path runtime of the accepted state (sum over the path's nodes).
  double accepted_path_runtime = 0.0;
};

class PriorityConfigurator {
 public:
  PriorityConfigurator(const platform::ConfigGrid& grid, ConfiguratorOptions options);

  /// Configure the functions in `path_nodes` subject to `path_slo`.
  /// `config` is the full-workflow configuration and is mutated in place;
  /// `baseline` must be an evaluation of `config` as it stands (Algorithm
  /// 1's "execute G" provides it for the critical path; the scheduler passes
  /// the last accepted evaluation for sub-paths).
  PathConfigOutcome configure_path(search::Evaluator& evaluator,
                                   const std::vector<dag::NodeId>& path_nodes,
                                   double path_slo, platform::WorkflowConfig& config,
                                   const search::ProbeResult& baseline) const;

  const ConfiguratorOptions& options() const { return options_; }
  const platform::ConfigGrid& grid() const { return grid_; }

 private:
  std::size_t initial_step_units(double current_value, ResourceType type) const;

  platform::ConfigGrid grid_;
  ConfiguratorOptions options_;
};

}  // namespace aarc::core
