// Deallocation operations and the priority queue of Algorithm 2.
#pragma once

#include <cstddef>
#include <queue>
#include <vector>

#include "dag/graph.h"

namespace aarc::core {

/// Which resource an operation adjusts.
enum class ResourceType { Cpu, Memory };

const char* to_string(ResourceType type);

/// One pending deallocation: "take `step` grid units of `type` away from
/// `node`" with `trail` backoff retries left (paper Algorithm 2, line 7).
struct Operation {
  dag::NodeId node = dag::kInvalidNode;
  ResourceType type = ResourceType::Cpu;
  std::size_t step = 1;   ///< grid units removed per attempt
  std::size_t trail = 0;  ///< remaining backoff budget (FUNC_TRIAL at start)
};

/// Max-heap of operations.  Priorities: fresh ops enter at +infinity (line
/// 5), successfully applied ops re-enter keyed by the cost reduction they
/// achieved (line 20-21), reverted-but-retryable ops re-enter at 0 (line
/// 17).  Ties break FIFO by insertion sequence so the loop is deterministic.
class OperationQueue {
 public:
  void push(Operation op, double priority);
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Pop the highest-priority operation (FIFO among equal priorities).
  Operation pop();
  /// Priority of the next operation to pop; queue must be non-empty.
  double top_priority() const;

 private:
  struct Entry {
    Operation op;
    double priority;
    std::size_t sequence;

    /// std::priority_queue is a max-heap on operator<; an entry is "less"
    /// (popped later) when its priority is lower, or equal priority but
    /// inserted later.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry> heap_;
  std::size_t next_sequence_ = 0;
};

}  // namespace aarc::core
