#include "aarc/operation.h"

#include "support/contracts.h"

namespace aarc::core {

using support::expects;

const char* to_string(ResourceType type) {
  return type == ResourceType::Cpu ? "cpu" : "mem";
}

void OperationQueue::push(Operation op, double priority) {
  expects(op.node != dag::kInvalidNode, "operation must target a node");
  expects(op.step >= 1, "operation step must be >= 1 grid unit");
  heap_.push(Entry{op, priority, next_sequence_++});
}

Operation OperationQueue::pop() {
  expects(!heap_.empty(), "pop from empty operation queue");
  Operation op = heap_.top().op;
  heap_.pop();
  return op;
}

double OperationQueue::top_priority() const {
  expects(!heap_.empty(), "top_priority of empty operation queue");
  return heap_.top().priority;
}

}  // namespace aarc::core
