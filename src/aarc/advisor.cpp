#include "aarc/advisor.h"

#include "dag/critical_path.h"
#include "support/contracts.h"

namespace aarc::core {

using support::expects;

AdvisoryReport advise(const platform::Workflow& workflow,
                      const platform::WorkflowConfig& config,
                      const platform::Executor& executor, double slo_seconds,
                      double input_scale) {
  expects(slo_seconds > 0.0, "SLO must be positive");
  workflow.validate();
  expects(config.size() == workflow.function_count(),
          "config must have one entry per function");

  const auto run = executor.execute_mean(workflow, config, input_scale);
  expects(!run.failed, "cannot advise on a configuration that OOMs");

  // Weighted schedule for critical-path membership and slack.
  dag::Graph g = workflow.graph();
  g.set_weights(run.runtimes());
  const dag::Path cp = dag::find_critical_path(g);
  const dag::Schedule schedule = dag::compute_schedule(g);

  AdvisoryReport report;
  report.mean_makespan = run.makespan;
  report.mean_cost = run.total_cost;
  report.slo_seconds = slo_seconds;
  report.slo_headroom_fraction = 1.0 - run.makespan / slo_seconds;

  report.functions.resize(workflow.function_count());
  for (dag::NodeId id = 0; id < workflow.function_count(); ++id) {
    FunctionAdvice& advice = report.functions[id];
    advice.node = id;
    advice.config = config[id];
    advice.mean_runtime = run.invocations[id].runtime;
    advice.mean_cost = run.invocations[id].cost;
    advice.cost_share = run.total_cost > 0.0 ? advice.mean_cost / run.total_cost : 0.0;
    advice.elasticity = perf::elasticity(workflow.model(id), config[id].vcpu,
                                         config[id].memory_mb, input_scale);
    advice.affinity = perf::classify(advice.elasticity);
    advice.on_critical_path = cp.contains(id);
    advice.slack_seconds = schedule.slack(id);
  }
  return report;
}

}  // namespace aarc::core
