#include "aarc/scheduler.h"

#include <algorithm>

#include "dag/critical_path.h"
#include "dag/detour.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "support/contracts.h"
#include "support/log.h"

namespace aarc::core {

using support::expects;

namespace {

/// Build a baseline ProbeResult for configure_path from the last accepted
/// state of a previous path (only the per-function columns are consumed).
search::ProbeResult baseline_from(const std::vector<double>& runtimes,
                                  const std::vector<double>& costs) {
  return search::ProbeResult::owning(runtimes, costs);
}

}  // namespace

GraphCentricScheduler::GraphCentricScheduler(const platform::Executor& executor,
                                             platform::ConfigGrid grid,
                                             SchedulerOptions options)
    : executor_(&executor), grid_(grid), options_(options) {}

ScheduleReport GraphCentricScheduler::schedule(const platform::Workflow& workflow,
                                               double slo_seconds,
                                               double input_scale) const {
  expects(slo_seconds > 0.0, "SLO must be positive");

  obs::MetricsRegistry::global().counter(obs::metric::kAarcSchedules).inc();
  obs::Span schedule_span("aarc.schedule", "aarc");

  platform::Workflow wf = workflow.clone();
  wf.validate();
  const std::size_t n = wf.function_count();

  search::EvaluatorOptions eval_options;
  eval_options.resample.max_resamples = options_.probe_resamples;
  eval_options.resample.outlier_factor = options_.probe_outlier_factor;
  eval_options.threads = options_.evaluator_threads;
  eval_options.probe_cache = options_.probe_cache;
  search::Evaluator evaluator(wf, *executor_, slo_seconds, input_scale, options_.seed,
                              eval_options);
  const PriorityConfigurator configurator(grid_, options_.configurator);

  ScheduleReport report;

  // Lines 2-4: over-provisioned base configuration.
  platform::WorkflowConfig config = platform::uniform_config(n, grid_.max_config());

  // Line 5: execute G once to weight the DAG.  A transient platform fault
  // here says nothing about the configuration — re-probe before concluding
  // the workflow cannot run fully provisioned.
  obs::Span profile_span("aarc.profile_base", "aarc");
  search::ProbeResult baseline = evaluator.probe(config);
  for (std::size_t left = options_.configurator.transient_probe_retries;
       left > 0 && baseline.sample.failed && baseline.sample.transient; --left) {
    baseline = evaluator.probe(config);
  }
  profile_span.finish();
  if (baseline.sample.failed) {
    // The workflow cannot run even fully provisioned: no feasible config.
    report.result.trace = evaluator.trace();
    report.result.found_feasible = false;
    return report;
  }
  report.profiled_makespan = baseline.sample.makespan;
  wf.mutable_graph().set_weights(baseline.function_runtimes);

  // Line 6: critical path of the weighted DAG.
  const dag::Path critical_path = dag::find_critical_path(wf.graph());
  report.critical_path = critical_path.nodes();

  std::vector<bool> scheduled(n, false);

  // Lines 7-9: configure the critical path against the end-to-end SLO.
  PathConfigOutcome last =
      configurator.configure_path(evaluator, critical_path.nodes(), slo_seconds, config,
                                  baseline);
  for (dag::NodeId id : critical_path.nodes()) scheduled[id] = true;
  wf.mutable_graph().set_weights(last.accepted_runtimes);

  // Line 10: detour sub-paths connected to the critical path.
  const auto subpaths = dag::find_detour_subpaths(wf.graph(), critical_path);

  // Lines 11-21: configure each sub-path against its interval sub-SLO.
  for (const auto& sp : subpaths) {
    // Line 12: the sub-SLO is the critical-path interval between anchors.
    double sub_slo =
        critical_path.weight_between(wf.graph(), sp.start_anchor(), sp.end_anchor());

    // Lines 13-18: pop already-scheduled functions and deduct their runtime.
    std::vector<dag::NodeId> remaining;
    for (dag::NodeId id : sp.path.nodes()) {
      if (scheduled[id]) {
        sub_slo -= wf.graph().weight(id);
      } else {
        remaining.push_back(id);
      }
    }
    if (remaining.empty()) continue;
    if (sub_slo <= 0.0) {
      // Degenerate interval (anchors consume the whole budget): the detour
      // functions keep the base configuration, which is the fastest
      // available, so the critical path cannot be delayed.
      support::log_warn("sub-path ", sp.path.to_string(wf.graph()),
                        " has no slack; keeping base configuration");
      for (dag::NodeId id : remaining) scheduled[id] = true;
      continue;
    }

    const PathConfigOutcome outcome = configurator.configure_path(
        evaluator, remaining, sub_slo, config,
        baseline_from(last.accepted_runtimes, last.accepted_costs));
    for (dag::NodeId id : remaining) scheduled[id] = true;
    wf.mutable_graph().set_weights(outcome.accepted_runtimes);
    last = outcome;
    ++report.subpath_count;
  }

  // Nodes on neither the critical path nor any detour (possible with
  // multiple sources/sinks): configure each as a single-node path bounded by
  // its schedule slack.
  if (options_.configure_uncovered_nodes) {
    const auto uncovered = dag::uncovered_nodes(wf.graph(), critical_path, subpaths);
    if (!uncovered.empty()) {
      const dag::Schedule sched = dag::compute_schedule(wf.graph());
      for (dag::NodeId id : uncovered) {
        if (scheduled[id]) continue;
        const double budget = wf.graph().weight(id) + sched.slack(id);
        if (budget <= 0.0) continue;
        const PathConfigOutcome outcome = configurator.configure_path(
            evaluator, {id}, budget, config,
            baseline_from(last.accepted_runtimes, last.accepted_costs));
        scheduled[id] = true;
        wf.mutable_graph().set_weights(outcome.accepted_runtimes);
        last = outcome;
        ++report.uncovered_count;
      }
    }
  }

  // Finalization (step 7 in Fig. 4): verify the configuration once; a
  // transient fault must not reject an otherwise feasible configuration.
  // Under a probabilistic bound the verification probes min_replicates()
  // times and feasibility is the distribution verdict (doc/SLO.md); under
  // cost_bound > 0 feasibility means the cost verdict clears the budget.
  obs::Span finalize_span("aarc.finalize", "aarc");
  const bool probabilistic = !options_.configurator.slo.is_legacy();
  const std::size_t replicates = options_.configurator.slo.min_replicates();
  auto final_probe = [&]() {
    return probabilistic ? evaluator.probe_distribution(config, replicates)
                         : evaluator.probe(config);
  };
  search::ProbeResult final_eval = final_probe();
  for (std::size_t left = options_.configurator.transient_probe_retries;
       left > 0 && final_eval.sample.failed && final_eval.sample.transient; --left) {
    final_eval = final_probe();
  }
  finalize_span.finish();
  report.result.best_config = config;
  if (options_.configurator.cost_bound > 0.0) {
    // Dual mode: the promise is the budget, not the latency SLO.
    report.result.found_feasible =
        probabilistic
            ? search::slo_verdict(*final_eval.cost_distribution,
                                  options_.configurator.slo,
                                  options_.configurator.cost_bound) ==
                  search::SloVerdict::Accept
            : !final_eval.sample.failed &&
                  !(final_eval.sample.cost > options_.configurator.cost_bound);
  } else if (probabilistic) {
    report.result.found_feasible =
        search::slo_verdict(*final_eval.makespan_distribution,
                            options_.configurator.slo,
                            evaluator.slo_seconds()) == search::SloVerdict::Accept;
  } else {
    report.result.found_feasible = final_eval.sample.feasible;
  }
  report.result.trace = evaluator.trace();
  return report;
}

}  // namespace aarc::core
