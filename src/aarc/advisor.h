// Configuration advisor: explain a deployed configuration.
//
// Given a workflow, a configuration, and the SLO, the advisor produces the
// per-function diagnostics a platform operator would want next to the raw
// numbers: each function's share of the workflow cost, its resource
// affinity at the configured operating point, how far the allocation sits
// from the grid bounds, and whether the function is on the critical path.
// Used by `aarc_cli advise` and available as a library API.
#pragma once

#include <vector>

#include "perf/affinity.h"
#include "platform/executor.h"
#include "platform/resource.h"

namespace aarc::core {

struct FunctionAdvice {
  dag::NodeId node = dag::kInvalidNode;
  platform::ResourceConfig config;
  double mean_runtime = 0.0;          ///< seconds under this configuration
  double mean_cost = 0.0;             ///< per-invocation cost
  double cost_share = 0.0;            ///< fraction of the workflow cost
  perf::ResourceElasticity elasticity;
  perf::AffinityClass affinity = perf::AffinityClass::Balanced;
  bool on_critical_path = false;
  double slack_seconds = 0.0;         ///< schedule slack at this config
};

struct AdvisoryReport {
  std::vector<FunctionAdvice> functions;  ///< by NodeId
  double mean_makespan = 0.0;
  double mean_cost = 0.0;
  double slo_seconds = 0.0;
  /// Fraction of the SLO left unused: 1 - makespan/slo (negative = violating).
  double slo_headroom_fraction = 0.0;
};

/// Analyze `config` for `workflow` under `slo_seconds` (mean model, no
/// noise).  The executor supplies the pricing model.
AdvisoryReport advise(const platform::Workflow& workflow,
                      const platform::WorkflowConfig& config,
                      const platform::Executor& executor, double slo_seconds,
                      double input_scale = 1.0);

}  // namespace aarc::core
