// Graph-Centric Scheduler — Algorithm 1 of the paper, and the public entry
// point of the AARC framework.
//
// schedule() takes a workflow plus its end-to-end SLO and returns the
// cost-optimized decoupled configuration:
//   1. every function gets the over-provisioned base configuration (the
//      grid maximum) — line 2-4;
//   2. one profiling execution weights the DAG with observed runtimes —
//      line 5;
//   3. the critical path is extracted and handed to the Priority
//      Configurator with the full SLO — lines 6-9;
//   4. detour sub-paths are enumerated; each gets the critical-path interval
//      between its anchors as sub-SLO, minus the runtime of functions that
//      are already scheduled (lines 10-18), and is configured the same way
//      (lines 19-20);
//   5. the final configuration is returned together with the full sampling
//      trace (for Figs. 5-7).
#pragma once

#include "aarc/options.h"
#include "aarc/priority_configurator.h"
#include "platform/executor.h"
#include "search/evaluator.h"

namespace aarc::core {

/// Detailed report of one scheduling run (beyond the generic SearchResult).
struct ScheduleReport {
  search::SearchResult result;
  std::vector<dag::NodeId> critical_path;     ///< node ids in order
  std::size_t subpath_count = 0;              ///< detours configured
  std::size_t uncovered_count = 0;            ///< stray nodes configured
  double profiled_makespan = 0.0;             ///< base-config makespan
};

class GraphCentricScheduler {
 public:
  /// The executor is the platform the workflow runs on; the grid bounds the
  /// search space.  Both are captured by value/reference per call safety:
  /// executor must outlive the scheduler.
  GraphCentricScheduler(const platform::Executor& executor, platform::ConfigGrid grid,
                        SchedulerOptions options = {});

  /// Run Algorithm 1.  `input_scale` selects the input size class (1.0 for
  /// the paper's main experiments).  The workflow is cloned internally; the
  /// argument is not modified.
  ScheduleReport schedule(const platform::Workflow& workflow, double slo_seconds,
                          double input_scale = 1.0) const;

  const SchedulerOptions& options() const { return options_; }
  const platform::ConfigGrid& grid() const { return grid_; }

 private:
  const platform::Executor* executor_;
  platform::ConfigGrid grid_;
  SchedulerOptions options_;
};

}  // namespace aarc::core
