#include "baselines/bo/acquisition.h"

#include <cmath>
#include <numbers>

namespace aarc::baselines {

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double z) { return 0.5 * (1.0 + std::erf(z / std::numbers::sqrt2)); }

double expected_improvement(const GpPrediction& prediction, double best, double xi) {
  const double sigma = std::sqrt(prediction.variance);
  const double improvement = best - prediction.mean - xi;
  if (sigma < 1e-12) return improvement > 0.0 ? improvement : 0.0;
  const double z = improvement / sigma;
  return improvement * normal_cdf(z) + sigma * normal_pdf(z);
}

double negative_lower_confidence_bound(const GpPrediction& prediction, double beta) {
  const double sigma = std::sqrt(prediction.variance);
  return -(prediction.mean - beta * sigma);
}

}  // namespace aarc::baselines
