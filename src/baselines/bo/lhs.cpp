#include "baselines/bo/lhs.h"

#include "support/contracts.h"

namespace aarc::baselines {

using support::expects;

std::vector<std::vector<double>> latin_hypercube(std::size_t count, std::size_t dims,
                                                 support::Rng& rng) {
  expects(count > 0 && dims > 0, "latin_hypercube requires positive count and dims");
  std::vector<std::vector<double>> points(count, std::vector<double>(dims, 0.0));
  for (std::size_t d = 0; d < dims; ++d) {
    const auto strata = rng.permutation(count);
    for (std::size_t i = 0; i < count; ++i) {
      const double lo = static_cast<double>(strata[i]) / static_cast<double>(count);
      const double hi = static_cast<double>(strata[i] + 1) / static_cast<double>(count);
      points[i][d] = rng.uniform(lo, hi);
    }
  }
  return points;
}

}  // namespace aarc::baselines
