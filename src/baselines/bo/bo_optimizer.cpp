#include "baselines/bo/bo_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "baselines/bo/acquisition.h"
#include "baselines/bo/gp.h"
#include "baselines/bo/lhs.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "support/contracts.h"

namespace aarc::baselines {

using support::expects;

namespace {

/// Bijection between normalized [0,1]^{2F} vectors and grid configs.
class SpaceCodec {
 public:
  SpaceCodec(const platform::ConfigGrid& grid, std::size_t functions)
      : grid_(&grid), functions_(functions) {}

  std::size_t dims() const { return 2 * functions_; }

  platform::WorkflowConfig decode(const std::vector<double>& x) const {
    expects(x.size() == dims(), "codec dimension mismatch");
    platform::WorkflowConfig config(functions_);
    for (std::size_t f = 0; f < functions_; ++f) {
      config[f].vcpu = axis_value(grid_->cpu(), x[2 * f]);
      config[f].memory_mb = axis_value(grid_->memory(), x[2 * f + 1]);
    }
    return config;
  }

  std::vector<double> encode(const platform::WorkflowConfig& config) const {
    std::vector<double> x(dims());
    for (std::size_t f = 0; f < functions_; ++f) {
      x[2 * f] = axis_coord(grid_->cpu(), config[f].vcpu);
      x[2 * f + 1] = axis_coord(grid_->memory(), config[f].memory_mb);
    }
    return x;
  }

  /// Snap a normalized vector onto exact grid coordinates.
  std::vector<double> snap(const std::vector<double>& x) const {
    return encode(decode(x));
  }

 private:
  static double axis_value(const support::ValueGrid& axis, double coord) {
    const double clamped = std::clamp(coord, 0.0, 1.0);
    const auto idx = static_cast<std::size_t>(
        std::round(clamped * static_cast<double>(axis.size() - 1)));
    return axis.value(std::min(idx, axis.size() - 1));
  }

  static double axis_coord(const support::ValueGrid& axis, double value) {
    return static_cast<double>(axis.index_of(value)) /
           static_cast<double>(axis.size() - 1);
  }

  const platform::ConfigGrid* grid_;
  std::size_t functions_;
};

double objective_of(const search::Sample& sample, double slo, const BoOptions& options) {
  if (sample.failed) return options.oom_penalty;
  double obj = sample.cost;
  const double safe_slo = slo * (1.0 - options.slo_margin);
  if (sample.makespan > safe_slo) {
    obj += options.slo_penalty_per_second * (sample.makespan - safe_slo);
  }
  return obj;
}

/// Cheapest probe whose observed makespan sits inside the safety margin.
std::optional<std::size_t> best_safe_index(const search::SearchTrace& trace,
                                           double safe_slo) {
  std::optional<std::size_t> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& s : trace.samples()) {
    if (s.failed || s.makespan > safe_slo) continue;
    if (s.cost < best_cost) {
      best_cost = s.cost;
      best = s.index;
    }
  }
  return best;
}

std::unique_ptr<Kernel> make_kernel(const BoOptions& options) {
  constexpr double kSignalVariance = 1.0;
  constexpr double kInitialLengthscale = 0.2;
  if (options.kernel == KernelChoice::Rbf) {
    return std::make_unique<RbfKernel>(kSignalVariance, kInitialLengthscale);
  }
  return std::make_unique<Matern52Kernel>(kSignalVariance, kInitialLengthscale);
}

}  // namespace

search::SearchResult bayesian_optimization(search::Evaluator& evaluator,
                                           const platform::ConfigGrid& grid,
                                           const BoOptions& options) {
  expects(options.max_samples >= options.init_samples,
          "max_samples must cover the initial design");
  expects(options.init_samples >= 2, "need at least two initial samples");
  expects(options.candidate_pool > 0, "candidate pool must be non-empty");
  expects(options.batch_size >= 1, "batch size must be >= 1");

  obs::MetricsRegistry::global().counter(obs::metric::kBoRuns).inc();
  obs::Counter& iterations_metric =
      obs::MetricsRegistry::global().counter(obs::metric::kBoIterations);
  obs::Span run_span("bo.run", "baselines");

  const std::size_t functions = evaluator.workflow().function_count();
  const SpaceCodec codec(grid, functions);
  support::Rng rng(options.seed);

  std::vector<std::vector<double>> xs;
  std::vector<double> objectives;
  xs.reserve(options.max_samples);
  objectives.reserve(options.max_samples);
  // The budget is spent in billed samples: probes answered from the
  // memoization cache still inform the GP (they join xs/objectives) but
  // consumed no platform execution, so they don't count against max_samples.
  std::size_t billed = 0;

  // Submit a batch of normalized points through the probe gateway; results
  // come back in request order, so (xs, objectives) grow deterministically
  // for any evaluator thread count.
  auto probe_batch = [&](const std::vector<std::vector<double>>& points) {
    std::vector<search::ProbeRequest> requests;
    requests.reserve(points.size());
    std::vector<std::vector<double>> snapped;
    snapped.reserve(points.size());
    for (const auto& x : points) {
      snapped.push_back(codec.snap(x));
      requests.emplace_back(codec.decode(snapped.back()));
    }
    const auto results = evaluator.evaluate_batch(requests);
    for (std::size_t i = 0; i < results.size(); ++i) {
      xs.push_back(snapped[i]);
      objectives.push_back(
          objective_of(results[i].sample, evaluator.slo_seconds(), options));
      if (!results[i].cache_hit) ++billed;
    }
  };

  // Initial design: the over-provisioned provider default first (a known
  // safe anchor, as in Bilal et al.'s setup), then a Latin hypercube — all
  // submitted as one batch, since none depends on another's outcome.
  std::vector<std::vector<double>> init;
  std::size_t lhs_count = options.init_samples;
  if (options.warm_start_with_base) {
    init.push_back(codec.encode(platform::uniform_config(functions, grid.max_config())));
    lhs_count -= 1;
  }
  for (auto& x : latin_hypercube(lhs_count, codec.dims(), rng)) {
    init.push_back(std::move(x));
  }
  probe_batch(init);

  GaussianProcess gp(make_kernel(options), options.noise_variance);

  // When the probe cache keeps answering every candidate, billed stops
  // advancing; a few consecutive rounds that bill nothing end the search
  // rather than re-ranking the same cached space forever.  With the cache
  // off, billed == xs.size() and the loop behaves exactly as before.
  std::size_t stale_rounds = 0;
  while (billed < options.max_samples && stale_rounds < 8) {
    iterations_metric.inc();
    obs::Span iteration_span("bo.iteration", "baselines");
    const std::size_t billed_before = billed;
    {
      obs::Span fit_span("bo.fit", "baselines");
      fit_span.arg("observations", static_cast<std::uint64_t>(xs.size()));
      gp.fit(xs, objectives);
      if (options.lengthscale_every > 0 && xs.size() % options.lengthscale_every == 0) {
        gp.select_lengthscale({0.05, 0.1, 0.2, 0.4, 0.8});
      }
    }
    obs::Span acquire_span("bo.acquire", "baselines");

    const double best_objective = *std::min_element(objectives.begin(), objectives.end());
    const std::size_t best_index = static_cast<std::size_t>(
        std::min_element(objectives.begin(), objectives.end()) - objectives.begin());

    // Candidate pool: uniform random grid points + local moves around the
    // incumbent (one coordinate nudged a few grid steps).
    std::vector<std::vector<double>> candidates;
    candidates.reserve(options.candidate_pool + options.local_candidates);
    for (std::size_t i = 0; i < options.candidate_pool; ++i) {
      std::vector<double> x(codec.dims());
      for (double& v : x) v = rng.uniform(0.0, 1.0);
      candidates.push_back(codec.snap(x));
    }
    for (std::size_t i = 0; i < options.local_candidates; ++i) {
      std::vector<double> x = xs[best_index];
      const std::size_t dim = rng.index(codec.dims());
      x[dim] = std::clamp(x[dim] + rng.normal(0.0, 0.05), 0.0, 1.0);
      candidates.push_back(codec.snap(x));
    }

    // Rank candidates by expected improvement (ties broken by pool index so
    // the pick is deterministic), then submit the top-k distinct configs as
    // one batch.  The last round is truncated to the remaining budget.
    std::vector<std::size_t> order(candidates.size());
    std::vector<double> ei(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      order[i] = i;
      ei[i] = expected_improvement(gp.predict(candidates[i]), best_objective, options.xi);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return ei[a] > ei[b]; });

    const std::size_t budget_left = options.max_samples - billed;
    const std::size_t want = std::min(options.batch_size, budget_left);
    std::vector<std::vector<double>> picked;
    picked.reserve(want);
    for (std::size_t idx : order) {
      if (picked.size() == want) break;
      // Snapping collapses nearby points; probing the same config twice in
      // one round wastes budget without informing the GP.
      if (std::find(picked.begin(), picked.end(), candidates[idx]) != picked.end()) {
        continue;
      }
      picked.push_back(candidates[idx]);
    }
    acquire_span.finish();
    probe_batch(picked);
    stale_rounds = billed == billed_before ? stale_rounds + 1 : 0;
  }

  search::SearchResult result;

  if (!options.slo.is_legacy()) {
    // Probabilistic validation stage (doc/SLO.md): the single-sample trace
    // ranking stays the proposal mechanism, but the promise is made by a
    // replicate distribution.  Walk the in-margin candidates cheapest first
    // and return the first whose makespan verdict accepts.
    const double safe_slo = evaluator.slo_seconds() * (1.0 - options.slo_margin);
    std::vector<std::size_t> candidates;
    {
      const auto& samples = evaluator.trace().samples();
      for (const auto& s : samples) {
        if (!s.failed && !(s.makespan > safe_slo)) candidates.push_back(s.index);
      }
      std::sort(candidates.begin(), candidates.end(),
                [&](std::size_t a, std::size_t b) {
                  if (samples[a].cost != samples[b].cost)
                    return samples[a].cost < samples[b].cost;
                  return a < b;
                });
      if (candidates.size() > options.validation_candidates) {
        candidates.resize(options.validation_candidates);
      }
    }
    const std::size_t replicates = options.slo.min_replicates();
    for (std::size_t idx : candidates) {
      const platform::WorkflowConfig candidate =
          evaluator.trace().samples()[idx].config;
      const search::ProbeResult validated =
          evaluator.probe_distribution(candidate, replicates);
      if (search::slo_verdict(*validated.makespan_distribution, options.slo,
                              safe_slo) == search::SloVerdict::Accept) {
        result.found_feasible = true;
        result.best_config = candidate;
        break;
      }
    }
    result.trace = evaluator.trace();
    return result;
  }

  result.trace = evaluator.trace();
  auto best = best_safe_index(result.trace, evaluator.slo_seconds() * (1.0 - options.slo_margin));
  // Fall back to plain feasibility if nothing sits inside the margin.
  if (!best.has_value()) best = result.trace.best_feasible_index();
  if (best.has_value()) {
    result.found_feasible = true;
    result.best_config = result.trace.samples()[*best].config;
  }
  return result;
}

}  // namespace aarc::baselines
