// Latin-hypercube sampling in [0,1]^d for BO initialization.
#pragma once

#include <vector>

#include "support/rng.h"

namespace aarc::baselines {

/// `count` points in [0,1]^d, one per stratum per dimension, jittered within
/// strata.  Deterministic for a given rng state.
std::vector<std::vector<double>> latin_hypercube(std::size_t count, std::size_t dims,
                                                 support::Rng& rng);

}  // namespace aarc::baselines
