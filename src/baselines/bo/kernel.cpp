#include "baselines/bo/kernel.h"

#include <cmath>

#include "support/contracts.h"

namespace aarc::baselines {

using support::expects;

namespace {
double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  expects(a.size() == b.size(), "kernel input dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}
}  // namespace

RbfKernel::RbfKernel(double signal_variance, double lengthscale)
    : signal_variance_(signal_variance), lengthscale_(lengthscale) {
  expects(signal_variance > 0.0, "signal variance must be positive");
  expects(lengthscale > 0.0, "lengthscale must be positive");
}

double RbfKernel::operator()(const std::vector<double>& a,
                             const std::vector<double>& b) const {
  const double r2 = squared_distance(a, b);
  return signal_variance_ * std::exp(-r2 / (2.0 * lengthscale_ * lengthscale_));
}

std::unique_ptr<Kernel> RbfKernel::clone() const {
  return std::make_unique<RbfKernel>(*this);
}

std::unique_ptr<Kernel> RbfKernel::with_lengthscale(double lengthscale) const {
  return std::make_unique<RbfKernel>(signal_variance_, lengthscale);
}

Matern52Kernel::Matern52Kernel(double signal_variance, double lengthscale)
    : signal_variance_(signal_variance), lengthscale_(lengthscale) {
  expects(signal_variance > 0.0, "signal variance must be positive");
  expects(lengthscale > 0.0, "lengthscale must be positive");
}

double Matern52Kernel::operator()(const std::vector<double>& a,
                                  const std::vector<double>& b) const {
  const double r = std::sqrt(squared_distance(a, b));
  const double s = std::sqrt(5.0) * r / lengthscale_;
  return signal_variance_ * (1.0 + s + s * s / 3.0) * std::exp(-s);
}

std::unique_ptr<Kernel> Matern52Kernel::clone() const {
  return std::make_unique<Matern52Kernel>(*this);
}

std::unique_ptr<Kernel> Matern52Kernel::with_lengthscale(double lengthscale) const {
  return std::make_unique<Matern52Kernel>(signal_variance_, lengthscale);
}

}  // namespace aarc::baselines
