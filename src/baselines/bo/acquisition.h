// Acquisition functions for Bayesian optimization (minimization form).
#pragma once

#include "baselines/bo/gp.h"

namespace aarc::baselines {

/// Standard normal probability density.
double normal_pdf(double z);
/// Standard normal cumulative distribution.
double normal_cdf(double z);

/// Expected improvement below `best` for a minimization problem:
/// EI = (best - mu - xi) Phi(z) + sigma phi(z), z = (best - mu - xi)/sigma.
/// Returns 0 when sigma is (numerically) 0.
double expected_improvement(const GpPrediction& prediction, double best, double xi = 0.0);

/// Lower confidence bound (negated for "larger is better" ranking):
/// score = -(mu - beta * sigma).
double negative_lower_confidence_bound(const GpPrediction& prediction, double beta = 2.0);

}  // namespace aarc::baselines
