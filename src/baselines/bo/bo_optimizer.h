// Bayesian-optimization baseline (Bilal et al. [8], adapted to workflows as
// in Section IV-A(b) of the paper).
//
// The search space is the joint decoupled configuration of all functions:
// per function a (vCPU, memory) pair on the discrete grid, i.e. 2F
// dimensions normalized to [0,1].  The objective is workflow cost with a
// linear penalty for SLO violations (and a large fixed penalty for OOM).
// Initialization is a Latin hypercube; each round fits a GP (Matern 5/2 by
// default) and maximizes expected improvement over a random candidate pool
// plus local perturbations of the incumbent.
#pragma once

#include <cstdint>
#include <memory>

#include "platform/resource.h"
#include "search/evaluator.h"
#include "support/rng.h"

namespace aarc::baselines {

enum class KernelChoice { Matern52, Rbf };

struct BoOptions {
  std::size_t max_samples = 100;       ///< total evaluations incl. init
  std::size_t init_samples = 10;       ///< warm start + Latin hypercube
  /// Probes evaluated per acquisition round: the top-k expected-improvement
  /// candidates are submitted as one batch (Bilal et al. exploit exactly
  /// this parallelism).  1 reproduces classic sequential BO; the sample
  /// budget is respected for any value (the last batch is truncated).  The
  /// initial design is always submitted as a single batch.
  std::size_t batch_size = 1;
  std::size_t candidate_pool = 512;    ///< random grid candidates per round
  std::size_t local_candidates = 64;   ///< perturbations of the incumbent
  double slo_penalty_per_second = 50.0;///< objective penalty per second over SLO
  double oom_penalty = 1e6;            ///< objective for OOM probes
  double xi = 0.01;                    ///< EI exploration margin
  double slo_margin = 0.03;            ///< configs within slo*(1-margin) count as safe
  bool warm_start_with_base = true;    ///< first probe = over-provisioned default
  KernelChoice kernel = KernelChoice::Matern52;
  double noise_variance = 1e-3;        ///< GP noise (standardized units)
  std::size_t lengthscale_every = 10;  ///< refit lengthscale each k rounds
  std::uint64_t seed = 7;

  /// Probabilistic SLO bound (search/slo.h, doc/SLO.md).  The search loop is
  /// untouched (single-sample probes feed the GP exactly as before — the
  /// default stays bit-identical); a non-legacy bound adds a *validation*
  /// stage after the loop: the cheapest in-margin trace candidates (up to
  /// validation_candidates) are re-probed `slo.min_replicates()` times each
  /// and the first whose makespan distribution clears the verdict wins.
  /// found_feasible is false when none does.
  search::SloBound slo{};
  /// How many trace candidates the probabilistic validation stage may try.
  std::size_t validation_candidates = 5;
};

/// Run the BO baseline.  Every evaluation is recorded in the evaluator's
/// trace; the returned best config is the cheapest feasible probe (empty
/// when none was feasible).
search::SearchResult bayesian_optimization(search::Evaluator& evaluator,
                                           const platform::ConfigGrid& grid,
                                           const BoOptions& options = {});

}  // namespace aarc::baselines
