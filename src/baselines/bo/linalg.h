// Small dense linear algebra for the Gaussian-process baseline.
//
// Row-major matrices, Cholesky factorization with jitter, and triangular
// solves — everything a GP posterior needs, nothing more.  Sizes are the
// number of BO samples (~100), so O(n^3) with plain loops is plenty.
#pragma once

#include <cstddef>
#include <vector>

namespace aarc::baselines {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// A * v; v.size() must equal cols().
  std::vector<double> multiply(const std::vector<double>& v) const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Adds `jitter` to the diagonal before factorizing (GP numerical hygiene);
/// throws ContractViolation if the matrix is not SPD even with jitter.
Matrix cholesky(const Matrix& a, double jitter = 1e-10);

/// Solve L y = b with L lower-triangular.
std::vector<double> solve_lower(const Matrix& l, const std::vector<double>& b);

/// Solve L^T x = y with L lower-triangular (upper solve on the transpose).
std::vector<double> solve_lower_transpose(const Matrix& l, const std::vector<double>& y);

/// Solve A x = b given the Cholesky factor L of A.
std::vector<double> cholesky_solve(const Matrix& l, const std::vector<double>& b);

/// Dot product; sizes must match.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Sum of log of the diagonal (log det(L) for a Cholesky factor).
double log_diagonal_sum(const Matrix& l);

}  // namespace aarc::baselines
