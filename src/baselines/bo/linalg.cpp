#include "baselines/bo/linalg.h"

#include <cmath>

#include "support/contracts.h"

namespace aarc::baselines {

using support::expects;

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  expects(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

double& Matrix::at(std::size_t r, std::size_t c) {
  expects(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  expects(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  expects(v.size() == cols_, "matrix-vector size mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += data_[r * cols_ + c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix cholesky(const Matrix& a, double jitter) {
  expects(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l.at(j, k) * l.at(j, k);
    expects(diag > 0.0, "matrix is not positive definite (even with jitter)");
    l.at(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l.at(i, k) * l.at(j, k);
      l.at(i, j) = acc / l.at(j, j);
    }
  }
  return l;
}

std::vector<double> solve_lower(const Matrix& l, const std::vector<double>& b) {
  expects(l.rows() == l.cols(), "triangular solve requires a square matrix");
  expects(b.size() == l.rows(), "rhs size mismatch");
  const std::size_t n = l.rows();
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l.at(i, k) * y[k];
    y[i] = acc / l.at(i, i);
  }
  return y;
}

std::vector<double> solve_lower_transpose(const Matrix& l, const std::vector<double>& y) {
  expects(l.rows() == l.cols(), "triangular solve requires a square matrix");
  expects(y.size() == l.rows(), "rhs size mismatch");
  const std::size_t n = l.rows();
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l.at(k, i) * x[k];
    x[i] = acc / l.at(i, i);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& l, const std::vector<double>& b) {
  return solve_lower_transpose(l, solve_lower(l, b));
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  expects(a.size() == b.size(), "dot product size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double log_diagonal_sum(const Matrix& l) {
  expects(l.rows() == l.cols(), "log_diagonal_sum requires a square matrix");
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l.at(i, i));
  return acc;
}

}  // namespace aarc::baselines
