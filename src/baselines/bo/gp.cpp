#include "baselines/bo/gp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "support/contracts.h"
#include "support/statistics.h"

namespace aarc::baselines {

using support::expects;

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel, double noise_variance)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance) {
  expects(kernel_ != nullptr, "GP requires a kernel");
  expects(noise_variance_ > 0.0, "noise variance must be positive");
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  expects(!x.empty(), "GP fit requires at least one sample");
  expects(x.size() == y.size(), "x/y size mismatch");
  const std::size_t d = x.front().size();
  expects(d > 0, "GP inputs must have dimension >= 1");
  for (const auto& row : x) expects(row.size() == d, "inconsistent input dimension");

  x_ = x;
  y_raw_ = y;
  const auto stats = support::summarize(y);
  y_mean_ = stats.mean;
  y_scale_ = stats.stddev > 1e-12 ? stats.stddev : 1.0;
  y_std_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_std_[i] = (y[i] - y_mean_) / y_scale_;
  refit();
}

void GaussianProcess::refit() {
  const std::size_t n = x_.size();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = (*kernel_)(x_[i], x_[j]);
      k.at(i, j) = v;
      k.at(j, i) = v;
    }
    k.at(i, i) += noise_variance_;
  }
  chol_ = cholesky(k, 1e-9);
  alpha_ = cholesky_solve(chol_, y_std_);
}

GpPrediction GaussianProcess::predict(const std::vector<double>& x) const {
  expects(fitted(), "predict before fit");
  expects(x.size() == x_.front().size(), "query dimension mismatch");
  const std::size_t n = x_.size();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = (*kernel_)(x_[i], x);

  const double mean_std = dot(kstar, alpha_);
  const std::vector<double> v = solve_lower(chol_, kstar);
  const double kxx = (*kernel_)(x, x);
  const double var_std = std::max(0.0, kxx - dot(v, v));

  GpPrediction out;
  out.mean = mean_std * y_scale_ + y_mean_;
  out.variance = var_std * y_scale_ * y_scale_;
  return out;
}

double GaussianProcess::log_marginal_likelihood() const {
  expects(fitted(), "log_marginal_likelihood before fit");
  const auto n = static_cast<double>(x_.size());
  const double data_fit = -0.5 * dot(y_std_, alpha_);
  const double complexity = -log_diagonal_sum(chol_);
  const double norm = -0.5 * n * std::log(2.0 * std::numbers::pi);
  return data_fit + complexity + norm;
}

void GaussianProcess::select_lengthscale(const std::vector<double>& candidates) {
  expects(fitted(), "select_lengthscale before fit");
  expects(!candidates.empty(), "need at least one lengthscale candidate");
  double best_ll = -std::numeric_limits<double>::infinity();
  double best_ls = kernel_->lengthscale();
  for (double ls : candidates) {
    kernel_ = kernel_->with_lengthscale(ls);
    refit();
    const double ll = log_marginal_likelihood();
    if (ll > best_ll) {
      best_ll = ll;
      best_ls = ls;
    }
  }
  kernel_ = kernel_->with_lengthscale(best_ls);
  refit();
}

}  // namespace aarc::baselines
