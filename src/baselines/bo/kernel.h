// Covariance kernels over normalized configuration vectors ([0,1]^d).
#pragma once

#include <memory>
#include <vector>

namespace aarc::baselines {

class Kernel {
 public:
  virtual ~Kernel() = default;

  /// k(a, b); inputs are same-dimension vectors.
  virtual double operator()(const std::vector<double>& a,
                            const std::vector<double>& b) const = 0;

  virtual std::unique_ptr<Kernel> clone() const = 0;

  virtual double lengthscale() const = 0;
  virtual std::unique_ptr<Kernel> with_lengthscale(double lengthscale) const = 0;

 protected:
  Kernel() = default;
  Kernel(const Kernel&) = default;
  Kernel& operator=(const Kernel&) = default;
};

/// Squared-exponential: sigma_f^2 * exp(-||a-b||^2 / (2 l^2)).
class RbfKernel final : public Kernel {
 public:
  RbfKernel(double signal_variance, double lengthscale);

  double operator()(const std::vector<double>& a,
                    const std::vector<double>& b) const override;
  std::unique_ptr<Kernel> clone() const override;
  double lengthscale() const override { return lengthscale_; }
  std::unique_ptr<Kernel> with_lengthscale(double lengthscale) const override;

  double signal_variance() const { return signal_variance_; }

 private:
  double signal_variance_;
  double lengthscale_;
};

/// Matern 5/2: sigma_f^2 * (1 + sqrt(5)r/l + 5r^2/(3l^2)) exp(-sqrt(5)r/l).
class Matern52Kernel final : public Kernel {
 public:
  Matern52Kernel(double signal_variance, double lengthscale);

  double operator()(const std::vector<double>& a,
                    const std::vector<double>& b) const override;
  std::unique_ptr<Kernel> clone() const override;
  double lengthscale() const override { return lengthscale_; }
  std::unique_ptr<Kernel> with_lengthscale(double lengthscale) const override;

  double signal_variance() const { return signal_variance_; }

 private:
  double signal_variance_;
  double lengthscale_;
};

}  // namespace aarc::baselines
