// Gaussian-process regression with internal target standardization.
#pragma once

#include <memory>
#include <vector>

#include "baselines/bo/kernel.h"
#include "baselines/bo/linalg.h"

namespace aarc::baselines {

/// Posterior at a query point.
struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;  ///< >= 0 (clamped)
};

class GaussianProcess {
 public:
  /// noise_variance is relative to the standardized targets.
  GaussianProcess(std::unique_ptr<Kernel> kernel, double noise_variance = 1e-4);

  /// Fit on n points of dimension d.  Throws on inconsistent shapes.
  void fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  bool fitted() const { return !x_.empty(); }
  std::size_t sample_count() const { return x_.size(); }

  /// Posterior mean/variance in original target units.
  GpPrediction predict(const std::vector<double>& x) const;

  /// Log marginal likelihood of the standardized targets under the current
  /// fit (for lengthscale selection).
  double log_marginal_likelihood() const;

  /// Refit with the lengthscale from `candidates` that maximizes marginal
  /// likelihood.  Requires fitted().
  void select_lengthscale(const std::vector<double>& candidates);

 private:
  void refit();

  std::unique_ptr<Kernel> kernel_;
  double noise_variance_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_raw_;
  std::vector<double> y_std_;  ///< standardized targets
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  Matrix chol_;
  std::vector<double> alpha_;  ///< K^-1 y_std
};

}  // namespace aarc::baselines
