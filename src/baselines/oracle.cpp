#include "baselines/oracle.h"

#include <limits>

#include "support/contracts.h"

namespace aarc::baselines {

using support::expects;

OracleResult oracle_search(const platform::Workflow& workflow,
                           const platform::Executor& executor,
                           const platform::ConfigGrid& grid, double slo_seconds,
                           double input_scale, const OracleOptions& options) {
  expects(slo_seconds > 0.0, "SLO must be positive");
  expects(options.max_passes >= 1, "oracle needs at least one pass");
  expects(options.slo_margin >= 0.0 && options.slo_margin < 1.0,
          "slo_margin must be in [0, 1)");
  workflow.validate();

  const double safe_slo = slo_seconds * (1.0 - options.slo_margin);
  const std::size_t n = workflow.function_count();

  OracleResult result;
  result.config = platform::uniform_config(n, grid.max_config());

  auto evaluate = [&](const platform::WorkflowConfig& cfg) {
    ++result.evaluations;
    return executor.execute_mean(workflow, cfg, input_scale);
  };

  {
    const auto base = evaluate(result.config);
    if (base.failed || base.makespan > safe_slo) {
      // Even fully provisioned the workflow misses the SLO: infeasible.
      result.mean_makespan = base.makespan;
      result.mean_cost = base.total_cost;
      return result;
    }
    result.mean_makespan = base.makespan;
    result.mean_cost = base.total_cost;
  }

  const auto cpu_values = grid.cpu().values();
  const auto mem_values = grid.memory().values();

  bool changed = true;
  while (changed && result.passes < options.max_passes) {
    changed = false;
    ++result.passes;
    for (dag::NodeId id = 0; id < n; ++id) {
      platform::ResourceConfig best = result.config[id];
      double best_cost = result.mean_cost;

      // Exhaustive scan of this function's grid slice.  Memory points below
      // the function's OOM floor are skipped wholesale.
      const double floor = workflow.model(id).min_memory_mb(input_scale);
      platform::WorkflowConfig candidate = result.config;
      for (double mem : mem_values) {
        if (mem < floor) continue;
        candidate[id].memory_mb = mem;
        for (double cpu : cpu_values) {
          candidate[id].vcpu = cpu;
          const auto run = evaluate(candidate);
          if (run.failed || run.makespan > safe_slo) continue;
          if (run.total_cost < best_cost) {
            best_cost = run.total_cost;
            best = candidate[id];
          }
        }
      }
      if (!(best == result.config[id])) {
        result.config[id] = best;
        result.mean_cost = best_cost;
        changed = true;
      }
    }
  }

  const auto final_run = executor.execute_mean(workflow, result.config, input_scale);
  result.mean_makespan = final_run.makespan;
  result.mean_cost = final_run.total_cost;
  result.feasible = !final_run.failed && final_run.makespan <= safe_slo;
  return result;
}

}  // namespace aarc::baselines
