#include "baselines/random_search.h"

#include <limits>
#include <optional>

#include "obs/span.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace aarc::baselines {

using support::expects;

search::SearchResult random_search(search::Evaluator& evaluator,
                                   const platform::ConfigGrid& grid,
                                   const RandomSearchOptions& options) {
  expects(options.max_samples >= 1, "random search needs at least one sample");
  expects(options.slo_margin >= 0.0 && options.slo_margin < 1.0,
          "slo_margin must be in [0, 1)");

  obs::Span run_span("random.run", "baselines");
  const std::size_t n = evaluator.workflow().function_count();
  support::Rng rng(options.seed);

  // No draw depends on a previous probe's outcome, so a whole round is known
  // upfront: submit it as one batch and let the evaluator fan out.  The rng
  // draw order matches the old one-probe-at-a-time loop exactly.  The budget
  // is denominated in billed samples — probes answered from the memoization
  // cache are free — so top-up rounds follow until the budget is spent or
  // rounds stop billing anything new (every fresh draw already cached).
  bool warm_start = options.warm_start_with_base;
  std::size_t stale_rounds = 0;
  while (evaluator.billed_samples() < options.max_samples && stale_rounds < 4) {
    const std::size_t billed_before = evaluator.billed_samples();
    std::vector<search::ProbeRequest> requests;
    requests.reserve(options.max_samples - billed_before);
    if (warm_start) {
      requests.emplace_back(platform::uniform_config(n, grid.max_config()));
      warm_start = false;
    }
    while (billed_before + requests.size() < options.max_samples) {
      platform::WorkflowConfig config(n);
      for (auto& rc : config) {
        rc.vcpu = grid.cpu().value(rng.index(grid.cpu().size()));
        rc.memory_mb = grid.memory().value(rng.index(grid.memory().size()));
      }
      requests.emplace_back(std::move(config));
    }
    if (requests.empty()) break;
    (void)evaluator.evaluate_batch(requests);
    stale_rounds = evaluator.billed_samples() == billed_before ? stale_rounds + 1 : 0;
  }

  search::SearchResult result;
  result.trace = evaluator.trace();
  const double safe_slo = evaluator.slo_seconds() * (1.0 - options.slo_margin);
  std::optional<std::size_t> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& s : result.trace.samples()) {
    if (s.failed || s.makespan > safe_slo) continue;
    if (s.cost < best_cost) {
      best_cost = s.cost;
      best = s.index;
    }
  }
  if (!best.has_value()) best = result.trace.best_feasible_index();
  if (best.has_value()) {
    result.found_feasible = true;
    result.best_config = result.trace.samples()[*best].config;
  }
  return result;
}

}  // namespace aarc::baselines
