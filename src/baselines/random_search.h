// Random search: the classic black-box control for BO.
//
// Draws uniformly random grid configurations (optionally warm-started with
// the over-provisioned default) and keeps the cheapest SLO-safe probe.  Any
// model-based method that cannot beat this is not earning its complexity.
#pragma once

#include <cstdint>

#include "platform/resource.h"
#include "search/evaluator.h"

namespace aarc::baselines {

struct RandomSearchOptions {
  std::size_t max_samples = 100;
  double slo_margin = 0.03;          ///< select within slo*(1-margin)
  bool warm_start_with_base = true;  ///< first probe = grid maximum
  std::uint64_t seed = 17;
};

/// Run random search; every probe lands in the evaluator's trace.
search::SearchResult random_search(search::Evaluator& evaluator,
                                   const platform::ConfigGrid& grid,
                                   const RandomSearchOptions& options = {});

}  // namespace aarc::baselines
