#include "baselines/maff/maff.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "support/contracts.h"

namespace aarc::baselines {

using support::expects;

namespace {

platform::ResourceConfig coupled(const platform::ConfigGrid& grid, double memory_mb,
                                 double mb_per_vcpu) {
  platform::ResourceConfig rc;
  rc.memory_mb = grid.memory().snap(memory_mb);
  rc.vcpu = grid.coupled_vcpu_for_memory(rc.memory_mb, mb_per_vcpu);
  return rc;
}

}  // namespace

search::SearchResult maff_gradient_descent(search::Evaluator& evaluator,
                                           const platform::ConfigGrid& grid,
                                           const MaffOptions& options) {
  expects(options.mb_per_vcpu > 0.0, "coupling ratio must be positive");
  expects(options.initial_step_mb >= options.min_step_mb,
          "initial step must be >= min step");
  expects(options.max_samples >= 1, "max_samples must be >= 1");

  obs::MetricsRegistry::global().counter(obs::metric::kMaffRuns).inc();
  obs::Counter& rounds_metric =
      obs::MetricsRegistry::global().counter(obs::metric::kMaffRounds);
  obs::Span run_span("maff.run", "baselines");

  const std::size_t n = evaluator.workflow().function_count();
  const double safe_slo = evaluator.slo_seconds() * (1.0 - options.slo_margin);

  // Over-provisioned coupled start.
  std::vector<double> memory(n, grid.memory().snap(options.start_memory_mb));
  platform::WorkflowConfig config(n);
  for (std::size_t f = 0; f < n; ++f) {
    config[f] = coupled(grid, memory[f], options.mb_per_vcpu);
  }

  // Probabilistic bound (doc/SLO.md): every descent verdict probes
  // `replicates` times and judges the makespan distribution; the legacy
  // default keeps the single-sample point checks bit-identical.
  const bool probabilistic = !options.slo.is_legacy();
  const std::size_t replicates = options.slo.min_replicates();
  auto evaluate = [&]() {
    return probabilistic ? evaluator.probe_distribution(config, replicates)
                         : evaluator.probe(config);
  };
  auto slo_ok = [&](const search::ProbeResult& probe) {
    if (probabilistic) {
      return !probe.sample.failed &&
             search::slo_verdict(*probe.makespan_distribution, options.slo,
                                 safe_slo) == search::SloVerdict::Accept;
    }
    return !probe.sample.failed && probe.sample.makespan <= safe_slo;
  };

  // Baseline probe: establishes cost under the starting configuration.
  search::ProbeResult current = evaluate();
  double current_cost = current.sample.cost;
  const bool start_feasible = slo_ok(current);

  std::vector<double> step(n, options.initial_step_mb);
  std::vector<bool> done(n, !start_feasible);  // infeasible start: nothing to do

  // max_samples is a billed-sample budget: probes served from the memoization
  // cache are free and must not end the descent early.
  for (std::size_t round = 0;
       round < options.max_rounds && evaluator.billed_samples() < options.max_samples;
       ++round) {
    obs::Span round_span("maff.round", "baselines");
    rounds_metric.inc();
    bool any_progress = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (done[f]) continue;
      if (evaluator.billed_samples() >= options.max_samples) break;

      const double proposed_memory = grid.memory().snap(memory[f] - step[f]);
      if (proposed_memory >= memory[f]) {
        // Already at the floor for this step size.
        step[f] /= 2.0;
        if (step[f] < options.min_step_mb) done[f] = true;
        continue;
      }

      const platform::ResourceConfig previous = config[f];
      config[f] = coupled(grid, proposed_memory, options.mb_per_vcpu);
      const search::ProbeResult probe = evaluate();

      if (!slo_ok(probe)) {
        // SLO violated: revert and terminate this function's descent.
        config[f] = previous;
        done[f] = true;
        continue;
      }
      if (!(probe.sample.cost < current_cost)) {
        // Cost did not improve: revert, halve the step (gradient backoff).
        config[f] = previous;
        step[f] /= 2.0;
        if (step[f] < options.min_step_mb) done[f] = true;
        continue;
      }

      // Accept the cheaper coupled configuration.
      memory[f] = proposed_memory;
      current_cost = probe.sample.cost;
      any_progress = true;
    }
    if (!any_progress && std::all_of(done.begin(), done.end(), [](bool d) { return d; })) {
      break;
    }
    if (!any_progress) {
      // No accepted move this sweep; continue only if some function still
      // has step budget (its next, smaller step may succeed).
      bool movable = false;
      for (std::size_t f = 0; f < n; ++f) movable = movable || !done[f];
      if (!movable) break;
    }
  }

  search::SearchResult result;

  if (probabilistic) {
    // The trace scan below ranks individual samples — noisy draws, not
    // verdicts — so the probabilistic path instead validates the descent's
    // final configuration (every revert restored `config`, so it is the
    // last accepted state) with one more replicate distribution.
    const search::ProbeResult validated = evaluate();
    if (slo_ok(validated)) {
      result.found_feasible = true;
      result.best_config = config;
    }
    result.trace = evaluator.trace();
    return result;
  }

  result.trace = evaluator.trace();
  // Cheapest probe inside the safety margin; fall back to plain feasibility.
  std::optional<std::size_t> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& s : result.trace.samples()) {
    if (s.failed || s.makespan > safe_slo) continue;
    if (s.cost < best_cost) {
      best_cost = s.cost;
      best = s.index;
    }
  }
  if (!best.has_value()) best = result.trace.best_feasible_index();
  if (best.has_value()) {
    result.found_feasible = true;
    result.best_config = result.trace.samples()[*best].config;
  }
  return result;
}

}  // namespace aarc::baselines
