// MAFF baseline (Zubko et al. [14], adapted as in Section IV-A(b)):
// memory-centric gradient descent with coupled CPU.
//
// "The MAFF gradient descent method iteratively minimizes cost, allocating
// vCPU cores proportionally (1 core per 1,024 MB of memory).  If a
// workflow's SLO is violated, the process reverts to the previous step and
// terminates."
//
// Adaptation to workflows: round-robin coordinate descent over functions.
// Each function descends its memory knob (CPU always coupled at
// memory/1024) with a halving step; SLO violation reverts and terminates
// that function's descent, a cost increase halves the step.  The coupled
// knob keeps the search space small (few samples) but forfeits decoupled
// optima — exactly the local-optimum behaviour the paper reports for the
// ML Pipeline workflow.
#pragma once

#include <cstdint>

#include "platform/resource.h"
#include "search/evaluator.h"

namespace aarc::baselines {

struct MaffOptions {
  double mb_per_vcpu = 1024.0;        ///< coupling ratio (paper: 1 core / 1024 MB)
  double initial_step_mb = 2048.0;    ///< first memory decrement
  double min_step_mb = 128.0;         ///< descent stops below this step
  double start_memory_mb = 10240.0;   ///< over-provisioned start
  std::size_t max_samples = 100;      ///< global probe cap
  std::size_t max_rounds = 16;        ///< round-robin sweeps cap
  double slo_margin = 0.03;           ///< keep makespan within slo*(1-margin)

  /// Probabilistic SLO bound (search/slo.h, doc/SLO.md).  The default is the
  /// paper's single-sample point check, bit-identical to earlier releases.
  /// A non-legacy bound makes every descent step probe
  /// `slo.min_replicates()` times and judge the makespan distribution
  /// against the margin-adjusted SLO; the final configuration is validated
  /// the same way instead of scanning the trace (individual replicates are
  /// noisy samples, not verdicts).
  search::SloBound slo{};
};

/// Run the MAFF baseline.  Every probe lands in the evaluator's trace.
search::SearchResult maff_gradient_descent(search::Evaluator& evaluator,
                                           const platform::ConfigGrid& grid,
                                           const MaffOptions& options = {});

}  // namespace aarc::baselines
