// White-box oracle: near-optimal configurations from the mean model.
//
// Unlike AARC/BO/MAFF, the oracle is not sample-based — it reads the
// noiseless response surfaces directly and performs exhaustive per-function
// coordinate descent over the full grid (all cpu x memory points of one
// function, holding the others fixed), iterated to a fixpoint, subject to
// the mean makespan staying within the SLO.  It bounds what any black-box
// search could achieve and lets the benches report AARC's optimality gap.
#pragma once

#include "platform/executor.h"
#include "platform/resource.h"

namespace aarc::baselines {

struct OracleOptions {
  std::size_t max_passes = 8;      ///< coordinate-descent sweeps cap
  double slo_margin = 0.0;         ///< optimize against slo*(1-margin)
};

struct OracleResult {
  platform::WorkflowConfig config;
  double mean_makespan = 0.0;
  double mean_cost = 0.0;
  bool feasible = false;
  std::size_t passes = 0;          ///< sweeps until fixpoint (or cap)
  std::size_t evaluations = 0;     ///< mean-model executions performed
};

/// Compute the oracle configuration.  The executor's pricing model is used;
/// its noise/cold-start settings are ignored (mean executions only).
OracleResult oracle_search(const platform::Workflow& workflow,
                           const platform::Executor& executor,
                           const platform::ConfigGrid& grid, double slo_seconds,
                           double input_scale = 1.0, const OracleOptions& options = {});

}  // namespace aarc::baselines
