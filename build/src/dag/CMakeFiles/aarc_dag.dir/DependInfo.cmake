
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/analysis.cpp" "src/dag/CMakeFiles/aarc_dag.dir/analysis.cpp.o" "gcc" "src/dag/CMakeFiles/aarc_dag.dir/analysis.cpp.o.d"
  "/root/repo/src/dag/critical_path.cpp" "src/dag/CMakeFiles/aarc_dag.dir/critical_path.cpp.o" "gcc" "src/dag/CMakeFiles/aarc_dag.dir/critical_path.cpp.o.d"
  "/root/repo/src/dag/detour.cpp" "src/dag/CMakeFiles/aarc_dag.dir/detour.cpp.o" "gcc" "src/dag/CMakeFiles/aarc_dag.dir/detour.cpp.o.d"
  "/root/repo/src/dag/dot.cpp" "src/dag/CMakeFiles/aarc_dag.dir/dot.cpp.o" "gcc" "src/dag/CMakeFiles/aarc_dag.dir/dot.cpp.o.d"
  "/root/repo/src/dag/graph.cpp" "src/dag/CMakeFiles/aarc_dag.dir/graph.cpp.o" "gcc" "src/dag/CMakeFiles/aarc_dag.dir/graph.cpp.o.d"
  "/root/repo/src/dag/path.cpp" "src/dag/CMakeFiles/aarc_dag.dir/path.cpp.o" "gcc" "src/dag/CMakeFiles/aarc_dag.dir/path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/aarc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
