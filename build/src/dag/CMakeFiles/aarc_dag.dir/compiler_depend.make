# Empty compiler generated dependencies file for aarc_dag.
# This may be replaced when dependencies are built.
