file(REMOVE_RECURSE
  "CMakeFiles/aarc_dag.dir/analysis.cpp.o"
  "CMakeFiles/aarc_dag.dir/analysis.cpp.o.d"
  "CMakeFiles/aarc_dag.dir/critical_path.cpp.o"
  "CMakeFiles/aarc_dag.dir/critical_path.cpp.o.d"
  "CMakeFiles/aarc_dag.dir/detour.cpp.o"
  "CMakeFiles/aarc_dag.dir/detour.cpp.o.d"
  "CMakeFiles/aarc_dag.dir/dot.cpp.o"
  "CMakeFiles/aarc_dag.dir/dot.cpp.o.d"
  "CMakeFiles/aarc_dag.dir/graph.cpp.o"
  "CMakeFiles/aarc_dag.dir/graph.cpp.o.d"
  "CMakeFiles/aarc_dag.dir/path.cpp.o"
  "CMakeFiles/aarc_dag.dir/path.cpp.o.d"
  "libaarc_dag.a"
  "libaarc_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
