file(REMOVE_RECURSE
  "libaarc_dag.a"
)
