file(REMOVE_RECURSE
  "CMakeFiles/aarc_core.dir/advisor.cpp.o"
  "CMakeFiles/aarc_core.dir/advisor.cpp.o.d"
  "CMakeFiles/aarc_core.dir/operation.cpp.o"
  "CMakeFiles/aarc_core.dir/operation.cpp.o.d"
  "CMakeFiles/aarc_core.dir/priority_configurator.cpp.o"
  "CMakeFiles/aarc_core.dir/priority_configurator.cpp.o.d"
  "CMakeFiles/aarc_core.dir/scheduler.cpp.o"
  "CMakeFiles/aarc_core.dir/scheduler.cpp.o.d"
  "libaarc_core.a"
  "libaarc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
