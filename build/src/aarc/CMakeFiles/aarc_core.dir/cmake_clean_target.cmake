file(REMOVE_RECURSE
  "libaarc_core.a"
)
