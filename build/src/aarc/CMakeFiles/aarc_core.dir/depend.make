# Empty dependencies file for aarc_core.
# This may be replaced when dependencies are built.
