
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aarc/advisor.cpp" "src/aarc/CMakeFiles/aarc_core.dir/advisor.cpp.o" "gcc" "src/aarc/CMakeFiles/aarc_core.dir/advisor.cpp.o.d"
  "/root/repo/src/aarc/operation.cpp" "src/aarc/CMakeFiles/aarc_core.dir/operation.cpp.o" "gcc" "src/aarc/CMakeFiles/aarc_core.dir/operation.cpp.o.d"
  "/root/repo/src/aarc/priority_configurator.cpp" "src/aarc/CMakeFiles/aarc_core.dir/priority_configurator.cpp.o" "gcc" "src/aarc/CMakeFiles/aarc_core.dir/priority_configurator.cpp.o.d"
  "/root/repo/src/aarc/scheduler.cpp" "src/aarc/CMakeFiles/aarc_core.dir/scheduler.cpp.o" "gcc" "src/aarc/CMakeFiles/aarc_core.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/search/CMakeFiles/aarc_search.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/aarc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/aarc_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/aarc_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aarc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
