file(REMOVE_RECURSE
  "CMakeFiles/aarc_adaptive.dir/controller.cpp.o"
  "CMakeFiles/aarc_adaptive.dir/controller.cpp.o.d"
  "CMakeFiles/aarc_adaptive.dir/monitor.cpp.o"
  "CMakeFiles/aarc_adaptive.dir/monitor.cpp.o.d"
  "libaarc_adaptive.a"
  "libaarc_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
