file(REMOVE_RECURSE
  "libaarc_adaptive.a"
)
