# Empty dependencies file for aarc_adaptive.
# This may be replaced when dependencies are built.
