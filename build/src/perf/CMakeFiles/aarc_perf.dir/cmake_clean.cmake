file(REMOVE_RECURSE
  "CMakeFiles/aarc_perf.dir/affinity.cpp.o"
  "CMakeFiles/aarc_perf.dir/affinity.cpp.o.d"
  "CMakeFiles/aarc_perf.dir/analytic.cpp.o"
  "CMakeFiles/aarc_perf.dir/analytic.cpp.o.d"
  "CMakeFiles/aarc_perf.dir/calibration.cpp.o"
  "CMakeFiles/aarc_perf.dir/calibration.cpp.o.d"
  "CMakeFiles/aarc_perf.dir/composite.cpp.o"
  "CMakeFiles/aarc_perf.dir/composite.cpp.o.d"
  "CMakeFiles/aarc_perf.dir/noise.cpp.o"
  "CMakeFiles/aarc_perf.dir/noise.cpp.o.d"
  "CMakeFiles/aarc_perf.dir/profile_table.cpp.o"
  "CMakeFiles/aarc_perf.dir/profile_table.cpp.o.d"
  "libaarc_perf.a"
  "libaarc_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
