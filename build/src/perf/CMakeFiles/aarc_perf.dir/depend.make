# Empty dependencies file for aarc_perf.
# This may be replaced when dependencies are built.
