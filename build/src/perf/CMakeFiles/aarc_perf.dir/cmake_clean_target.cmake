file(REMOVE_RECURSE
  "libaarc_perf.a"
)
