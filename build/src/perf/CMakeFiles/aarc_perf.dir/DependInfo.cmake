
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/affinity.cpp" "src/perf/CMakeFiles/aarc_perf.dir/affinity.cpp.o" "gcc" "src/perf/CMakeFiles/aarc_perf.dir/affinity.cpp.o.d"
  "/root/repo/src/perf/analytic.cpp" "src/perf/CMakeFiles/aarc_perf.dir/analytic.cpp.o" "gcc" "src/perf/CMakeFiles/aarc_perf.dir/analytic.cpp.o.d"
  "/root/repo/src/perf/calibration.cpp" "src/perf/CMakeFiles/aarc_perf.dir/calibration.cpp.o" "gcc" "src/perf/CMakeFiles/aarc_perf.dir/calibration.cpp.o.d"
  "/root/repo/src/perf/composite.cpp" "src/perf/CMakeFiles/aarc_perf.dir/composite.cpp.o" "gcc" "src/perf/CMakeFiles/aarc_perf.dir/composite.cpp.o.d"
  "/root/repo/src/perf/noise.cpp" "src/perf/CMakeFiles/aarc_perf.dir/noise.cpp.o" "gcc" "src/perf/CMakeFiles/aarc_perf.dir/noise.cpp.o.d"
  "/root/repo/src/perf/profile_table.cpp" "src/perf/CMakeFiles/aarc_perf.dir/profile_table.cpp.o" "gcc" "src/perf/CMakeFiles/aarc_perf.dir/profile_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/aarc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
