# Empty compiler generated dependencies file for aarc_report.
# This may be replaced when dependencies are built.
