
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/advisory.cpp" "src/report/CMakeFiles/aarc_report.dir/advisory.cpp.o" "gcc" "src/report/CMakeFiles/aarc_report.dir/advisory.cpp.o.d"
  "/root/repo/src/report/ascii_chart.cpp" "src/report/CMakeFiles/aarc_report.dir/ascii_chart.cpp.o" "gcc" "src/report/CMakeFiles/aarc_report.dir/ascii_chart.cpp.o.d"
  "/root/repo/src/report/comparison.cpp" "src/report/CMakeFiles/aarc_report.dir/comparison.cpp.o" "gcc" "src/report/CMakeFiles/aarc_report.dir/comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aarc/CMakeFiles/aarc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/aarc_search.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/aarc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aarc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/aarc_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/aarc_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
