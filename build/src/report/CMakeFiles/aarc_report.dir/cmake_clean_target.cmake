file(REMOVE_RECURSE
  "libaarc_report.a"
)
