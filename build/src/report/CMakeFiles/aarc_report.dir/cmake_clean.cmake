file(REMOVE_RECURSE
  "CMakeFiles/aarc_report.dir/advisory.cpp.o"
  "CMakeFiles/aarc_report.dir/advisory.cpp.o.d"
  "CMakeFiles/aarc_report.dir/ascii_chart.cpp.o"
  "CMakeFiles/aarc_report.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/aarc_report.dir/comparison.cpp.o"
  "CMakeFiles/aarc_report.dir/comparison.cpp.o.d"
  "libaarc_report.a"
  "libaarc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
