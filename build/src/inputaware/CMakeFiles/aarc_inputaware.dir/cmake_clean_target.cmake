file(REMOVE_RECURSE
  "libaarc_inputaware.a"
)
