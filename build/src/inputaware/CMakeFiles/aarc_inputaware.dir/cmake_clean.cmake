file(REMOVE_RECURSE
  "CMakeFiles/aarc_inputaware.dir/descriptor.cpp.o"
  "CMakeFiles/aarc_inputaware.dir/descriptor.cpp.o.d"
  "CMakeFiles/aarc_inputaware.dir/engine.cpp.o"
  "CMakeFiles/aarc_inputaware.dir/engine.cpp.o.d"
  "libaarc_inputaware.a"
  "libaarc_inputaware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_inputaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
