# Empty compiler generated dependencies file for aarc_inputaware.
# This may be replaced when dependencies are built.
