file(REMOVE_RECURSE
  "libaarc_serving.a"
)
