file(REMOVE_RECURSE
  "CMakeFiles/aarc_serving.dir/simulator.cpp.o"
  "CMakeFiles/aarc_serving.dir/simulator.cpp.o.d"
  "libaarc_serving.a"
  "libaarc_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
