# Empty compiler generated dependencies file for aarc_serving.
# This may be replaced when dependencies are built.
