
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serving/simulator.cpp" "src/serving/CMakeFiles/aarc_serving.dir/simulator.cpp.o" "gcc" "src/serving/CMakeFiles/aarc_serving.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/aarc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/aarc_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/aarc_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aarc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
