# Empty dependencies file for aarc_support.
# This may be replaced when dependencies are built.
