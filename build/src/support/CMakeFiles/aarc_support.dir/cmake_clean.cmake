file(REMOVE_RECURSE
  "CMakeFiles/aarc_support.dir/contracts.cpp.o"
  "CMakeFiles/aarc_support.dir/contracts.cpp.o.d"
  "CMakeFiles/aarc_support.dir/grid.cpp.o"
  "CMakeFiles/aarc_support.dir/grid.cpp.o.d"
  "CMakeFiles/aarc_support.dir/log.cpp.o"
  "CMakeFiles/aarc_support.dir/log.cpp.o.d"
  "CMakeFiles/aarc_support.dir/rng.cpp.o"
  "CMakeFiles/aarc_support.dir/rng.cpp.o.d"
  "CMakeFiles/aarc_support.dir/statistics.cpp.o"
  "CMakeFiles/aarc_support.dir/statistics.cpp.o.d"
  "CMakeFiles/aarc_support.dir/strings.cpp.o"
  "CMakeFiles/aarc_support.dir/strings.cpp.o.d"
  "CMakeFiles/aarc_support.dir/table.cpp.o"
  "CMakeFiles/aarc_support.dir/table.cpp.o.d"
  "libaarc_support.a"
  "libaarc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
