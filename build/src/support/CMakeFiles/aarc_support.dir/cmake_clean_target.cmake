file(REMOVE_RECURSE
  "libaarc_support.a"
)
