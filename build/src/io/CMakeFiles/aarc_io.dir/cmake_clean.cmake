file(REMOVE_RECURSE
  "CMakeFiles/aarc_io.dir/json.cpp.o"
  "CMakeFiles/aarc_io.dir/json.cpp.o.d"
  "CMakeFiles/aarc_io.dir/trace_io.cpp.o"
  "CMakeFiles/aarc_io.dir/trace_io.cpp.o.d"
  "CMakeFiles/aarc_io.dir/workflow_io.cpp.o"
  "CMakeFiles/aarc_io.dir/workflow_io.cpp.o.d"
  "libaarc_io.a"
  "libaarc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
