file(REMOVE_RECURSE
  "libaarc_io.a"
)
