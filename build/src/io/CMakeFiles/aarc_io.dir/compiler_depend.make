# Empty compiler generated dependencies file for aarc_io.
# This may be replaced when dependencies are built.
