
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/json.cpp" "src/io/CMakeFiles/aarc_io.dir/json.cpp.o" "gcc" "src/io/CMakeFiles/aarc_io.dir/json.cpp.o.d"
  "/root/repo/src/io/trace_io.cpp" "src/io/CMakeFiles/aarc_io.dir/trace_io.cpp.o" "gcc" "src/io/CMakeFiles/aarc_io.dir/trace_io.cpp.o.d"
  "/root/repo/src/io/workflow_io.cpp" "src/io/CMakeFiles/aarc_io.dir/workflow_io.cpp.o" "gcc" "src/io/CMakeFiles/aarc_io.dir/workflow_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/aarc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/aarc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/aarc_search.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aarc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/aarc_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/aarc_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
