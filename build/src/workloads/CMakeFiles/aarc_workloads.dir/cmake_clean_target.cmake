file(REMOVE_RECURSE
  "libaarc_workloads.a"
)
