# Empty dependencies file for aarc_workloads.
# This may be replaced when dependencies are built.
