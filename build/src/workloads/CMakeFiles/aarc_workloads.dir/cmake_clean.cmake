file(REMOVE_RECURSE
  "CMakeFiles/aarc_workloads.dir/calibrated.cpp.o"
  "CMakeFiles/aarc_workloads.dir/calibrated.cpp.o.d"
  "CMakeFiles/aarc_workloads.dir/catalog.cpp.o"
  "CMakeFiles/aarc_workloads.dir/catalog.cpp.o.d"
  "CMakeFiles/aarc_workloads.dir/chatbot.cpp.o"
  "CMakeFiles/aarc_workloads.dir/chatbot.cpp.o.d"
  "CMakeFiles/aarc_workloads.dir/data_analytics.cpp.o"
  "CMakeFiles/aarc_workloads.dir/data_analytics.cpp.o.d"
  "CMakeFiles/aarc_workloads.dir/ml_pipeline.cpp.o"
  "CMakeFiles/aarc_workloads.dir/ml_pipeline.cpp.o.d"
  "CMakeFiles/aarc_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/aarc_workloads.dir/synthetic.cpp.o.d"
  "CMakeFiles/aarc_workloads.dir/video_analysis.cpp.o"
  "CMakeFiles/aarc_workloads.dir/video_analysis.cpp.o.d"
  "libaarc_workloads.a"
  "libaarc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
