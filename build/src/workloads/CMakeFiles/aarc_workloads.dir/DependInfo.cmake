
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/calibrated.cpp" "src/workloads/CMakeFiles/aarc_workloads.dir/calibrated.cpp.o" "gcc" "src/workloads/CMakeFiles/aarc_workloads.dir/calibrated.cpp.o.d"
  "/root/repo/src/workloads/catalog.cpp" "src/workloads/CMakeFiles/aarc_workloads.dir/catalog.cpp.o" "gcc" "src/workloads/CMakeFiles/aarc_workloads.dir/catalog.cpp.o.d"
  "/root/repo/src/workloads/chatbot.cpp" "src/workloads/CMakeFiles/aarc_workloads.dir/chatbot.cpp.o" "gcc" "src/workloads/CMakeFiles/aarc_workloads.dir/chatbot.cpp.o.d"
  "/root/repo/src/workloads/data_analytics.cpp" "src/workloads/CMakeFiles/aarc_workloads.dir/data_analytics.cpp.o" "gcc" "src/workloads/CMakeFiles/aarc_workloads.dir/data_analytics.cpp.o.d"
  "/root/repo/src/workloads/ml_pipeline.cpp" "src/workloads/CMakeFiles/aarc_workloads.dir/ml_pipeline.cpp.o" "gcc" "src/workloads/CMakeFiles/aarc_workloads.dir/ml_pipeline.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/aarc_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/aarc_workloads.dir/synthetic.cpp.o.d"
  "/root/repo/src/workloads/video_analysis.cpp" "src/workloads/CMakeFiles/aarc_workloads.dir/video_analysis.cpp.o" "gcc" "src/workloads/CMakeFiles/aarc_workloads.dir/video_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/aarc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/aarc_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/aarc_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aarc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
