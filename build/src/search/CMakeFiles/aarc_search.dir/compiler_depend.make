# Empty compiler generated dependencies file for aarc_search.
# This may be replaced when dependencies are built.
