file(REMOVE_RECURSE
  "libaarc_search.a"
)
