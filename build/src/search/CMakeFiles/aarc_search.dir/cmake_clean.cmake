file(REMOVE_RECURSE
  "CMakeFiles/aarc_search.dir/evaluator.cpp.o"
  "CMakeFiles/aarc_search.dir/evaluator.cpp.o.d"
  "CMakeFiles/aarc_search.dir/trace.cpp.o"
  "CMakeFiles/aarc_search.dir/trace.cpp.o.d"
  "libaarc_search.a"
  "libaarc_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
