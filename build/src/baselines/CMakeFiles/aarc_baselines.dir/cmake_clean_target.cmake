file(REMOVE_RECURSE
  "libaarc_baselines.a"
)
