
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bo/acquisition.cpp" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/acquisition.cpp.o" "gcc" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/acquisition.cpp.o.d"
  "/root/repo/src/baselines/bo/bo_optimizer.cpp" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/bo_optimizer.cpp.o" "gcc" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/bo_optimizer.cpp.o.d"
  "/root/repo/src/baselines/bo/gp.cpp" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/gp.cpp.o" "gcc" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/gp.cpp.o.d"
  "/root/repo/src/baselines/bo/kernel.cpp" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/kernel.cpp.o" "gcc" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/kernel.cpp.o.d"
  "/root/repo/src/baselines/bo/lhs.cpp" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/lhs.cpp.o" "gcc" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/lhs.cpp.o.d"
  "/root/repo/src/baselines/bo/linalg.cpp" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/linalg.cpp.o" "gcc" "src/baselines/CMakeFiles/aarc_baselines.dir/bo/linalg.cpp.o.d"
  "/root/repo/src/baselines/maff/maff.cpp" "src/baselines/CMakeFiles/aarc_baselines.dir/maff/maff.cpp.o" "gcc" "src/baselines/CMakeFiles/aarc_baselines.dir/maff/maff.cpp.o.d"
  "/root/repo/src/baselines/oracle.cpp" "src/baselines/CMakeFiles/aarc_baselines.dir/oracle.cpp.o" "gcc" "src/baselines/CMakeFiles/aarc_baselines.dir/oracle.cpp.o.d"
  "/root/repo/src/baselines/random_search.cpp" "src/baselines/CMakeFiles/aarc_baselines.dir/random_search.cpp.o" "gcc" "src/baselines/CMakeFiles/aarc_baselines.dir/random_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/search/CMakeFiles/aarc_search.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/aarc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aarc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/aarc_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/aarc_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
