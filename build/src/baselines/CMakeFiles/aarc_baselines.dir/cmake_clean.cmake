file(REMOVE_RECURSE
  "CMakeFiles/aarc_baselines.dir/bo/acquisition.cpp.o"
  "CMakeFiles/aarc_baselines.dir/bo/acquisition.cpp.o.d"
  "CMakeFiles/aarc_baselines.dir/bo/bo_optimizer.cpp.o"
  "CMakeFiles/aarc_baselines.dir/bo/bo_optimizer.cpp.o.d"
  "CMakeFiles/aarc_baselines.dir/bo/gp.cpp.o"
  "CMakeFiles/aarc_baselines.dir/bo/gp.cpp.o.d"
  "CMakeFiles/aarc_baselines.dir/bo/kernel.cpp.o"
  "CMakeFiles/aarc_baselines.dir/bo/kernel.cpp.o.d"
  "CMakeFiles/aarc_baselines.dir/bo/lhs.cpp.o"
  "CMakeFiles/aarc_baselines.dir/bo/lhs.cpp.o.d"
  "CMakeFiles/aarc_baselines.dir/bo/linalg.cpp.o"
  "CMakeFiles/aarc_baselines.dir/bo/linalg.cpp.o.d"
  "CMakeFiles/aarc_baselines.dir/maff/maff.cpp.o"
  "CMakeFiles/aarc_baselines.dir/maff/maff.cpp.o.d"
  "CMakeFiles/aarc_baselines.dir/oracle.cpp.o"
  "CMakeFiles/aarc_baselines.dir/oracle.cpp.o.d"
  "CMakeFiles/aarc_baselines.dir/random_search.cpp.o"
  "CMakeFiles/aarc_baselines.dir/random_search.cpp.o.d"
  "libaarc_baselines.a"
  "libaarc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
