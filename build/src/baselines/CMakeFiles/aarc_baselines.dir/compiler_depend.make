# Empty compiler generated dependencies file for aarc_baselines.
# This may be replaced when dependencies are built.
