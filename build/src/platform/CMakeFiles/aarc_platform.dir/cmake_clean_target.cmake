file(REMOVE_RECURSE
  "libaarc_platform.a"
)
