# Empty dependencies file for aarc_platform.
# This may be replaced when dependencies are built.
