
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/coldstart.cpp" "src/platform/CMakeFiles/aarc_platform.dir/coldstart.cpp.o" "gcc" "src/platform/CMakeFiles/aarc_platform.dir/coldstart.cpp.o.d"
  "/root/repo/src/platform/executor.cpp" "src/platform/CMakeFiles/aarc_platform.dir/executor.cpp.o" "gcc" "src/platform/CMakeFiles/aarc_platform.dir/executor.cpp.o.d"
  "/root/repo/src/platform/pricing.cpp" "src/platform/CMakeFiles/aarc_platform.dir/pricing.cpp.o" "gcc" "src/platform/CMakeFiles/aarc_platform.dir/pricing.cpp.o.d"
  "/root/repo/src/platform/profiler.cpp" "src/platform/CMakeFiles/aarc_platform.dir/profiler.cpp.o" "gcc" "src/platform/CMakeFiles/aarc_platform.dir/profiler.cpp.o.d"
  "/root/repo/src/platform/resource.cpp" "src/platform/CMakeFiles/aarc_platform.dir/resource.cpp.o" "gcc" "src/platform/CMakeFiles/aarc_platform.dir/resource.cpp.o.d"
  "/root/repo/src/platform/workflow.cpp" "src/platform/CMakeFiles/aarc_platform.dir/workflow.cpp.o" "gcc" "src/platform/CMakeFiles/aarc_platform.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/aarc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/aarc_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/aarc_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
