file(REMOVE_RECURSE
  "CMakeFiles/aarc_platform.dir/coldstart.cpp.o"
  "CMakeFiles/aarc_platform.dir/coldstart.cpp.o.d"
  "CMakeFiles/aarc_platform.dir/executor.cpp.o"
  "CMakeFiles/aarc_platform.dir/executor.cpp.o.d"
  "CMakeFiles/aarc_platform.dir/pricing.cpp.o"
  "CMakeFiles/aarc_platform.dir/pricing.cpp.o.d"
  "CMakeFiles/aarc_platform.dir/profiler.cpp.o"
  "CMakeFiles/aarc_platform.dir/profiler.cpp.o.d"
  "CMakeFiles/aarc_platform.dir/resource.cpp.o"
  "CMakeFiles/aarc_platform.dir/resource.cpp.o.d"
  "CMakeFiles/aarc_platform.dir/workflow.cpp.o"
  "CMakeFiles/aarc_platform.dir/workflow.cpp.o.d"
  "libaarc_platform.a"
  "libaarc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
