# Empty dependencies file for adaptive_drift.
# This may be replaced when dependencies are built.
