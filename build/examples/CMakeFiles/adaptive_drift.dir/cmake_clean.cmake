file(REMOVE_RECURSE
  "CMakeFiles/adaptive_drift.dir/adaptive_drift.cpp.o"
  "CMakeFiles/adaptive_drift.dir/adaptive_drift.cpp.o.d"
  "adaptive_drift"
  "adaptive_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
