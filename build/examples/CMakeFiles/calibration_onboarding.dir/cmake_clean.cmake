file(REMOVE_RECURSE
  "CMakeFiles/calibration_onboarding.dir/calibration_onboarding.cpp.o"
  "CMakeFiles/calibration_onboarding.dir/calibration_onboarding.cpp.o.d"
  "calibration_onboarding"
  "calibration_onboarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_onboarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
