# Empty compiler generated dependencies file for calibration_onboarding.
# This may be replaced when dependencies are built.
