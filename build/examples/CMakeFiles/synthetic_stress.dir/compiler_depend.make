# Empty compiler generated dependencies file for synthetic_stress.
# This may be replaced when dependencies are built.
