file(REMOVE_RECURSE
  "CMakeFiles/synthetic_stress.dir/synthetic_stress.cpp.o"
  "CMakeFiles/synthetic_stress.dir/synthetic_stress.cpp.o.d"
  "synthetic_stress"
  "synthetic_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
