file(REMOVE_RECURSE
  "CMakeFiles/input_aware_video.dir/input_aware_video.cpp.o"
  "CMakeFiles/input_aware_video.dir/input_aware_video.cpp.o.d"
  "input_aware_video"
  "input_aware_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_aware_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
