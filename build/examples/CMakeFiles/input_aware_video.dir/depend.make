# Empty dependencies file for input_aware_video.
# This may be replaced when dependencies are built.
