# Empty dependencies file for aarc_cli.
# This may be replaced when dependencies are built.
