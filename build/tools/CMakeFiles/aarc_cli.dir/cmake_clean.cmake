file(REMOVE_RECURSE
  "CMakeFiles/aarc_cli.dir/aarc_cli.cpp.o"
  "CMakeFiles/aarc_cli.dir/aarc_cli.cpp.o.d"
  "aarc_cli"
  "aarc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
