# Empty dependencies file for bench_fig3_bo_chatbot.
# This may be replaced when dependencies are built.
