# Empty compiler generated dependencies file for bench_table2_optimal_configs.
# This may be replaced when dependencies are built.
