# Empty dependencies file for bench_ablation_aarc.
# This may be replaced when dependencies are built.
