file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aarc.dir/bench_ablation_aarc.cpp.o"
  "CMakeFiles/bench_ablation_aarc.dir/bench_ablation_aarc.cpp.o.d"
  "bench_ablation_aarc"
  "bench_ablation_aarc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aarc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
