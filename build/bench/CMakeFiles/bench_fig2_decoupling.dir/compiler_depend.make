# Empty compiler generated dependencies file for bench_fig2_decoupling.
# This may be replaced when dependencies are built.
