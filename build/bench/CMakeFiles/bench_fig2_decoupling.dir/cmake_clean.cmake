file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_decoupling.dir/bench_fig2_decoupling.cpp.o"
  "CMakeFiles/bench_fig2_decoupling.dir/bench_fig2_decoupling.cpp.o.d"
  "bench_fig2_decoupling"
  "bench_fig2_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
