
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_slo_sweep.cpp" "bench/CMakeFiles/bench_slo_sweep.dir/bench_slo_sweep.cpp.o" "gcc" "bench/CMakeFiles/bench_slo_sweep.dir/bench_slo_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aarc/CMakeFiles/aarc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/aarc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/inputaware/CMakeFiles/aarc_inputaware.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/aarc_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/aarc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/aarc_report.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/aarc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/aarc_search.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/aarc_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/aarc_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aarc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
