file(REMOVE_RECURSE
  "CMakeFiles/bench_slo_sweep.dir/bench_slo_sweep.cpp.o"
  "CMakeFiles/bench_slo_sweep.dir/bench_slo_sweep.cpp.o.d"
  "bench_slo_sweep"
  "bench_slo_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slo_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
