# Empty dependencies file for bench_slo_sweep.
# This may be replaced when dependencies are built.
