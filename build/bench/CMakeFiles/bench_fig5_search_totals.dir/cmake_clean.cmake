file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_search_totals.dir/bench_fig5_search_totals.cpp.o"
  "CMakeFiles/bench_fig5_search_totals.dir/bench_fig5_search_totals.cpp.o.d"
  "bench_fig5_search_totals"
  "bench_fig5_search_totals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_search_totals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
