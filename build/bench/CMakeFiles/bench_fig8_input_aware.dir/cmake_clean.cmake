file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_input_aware.dir/bench_fig8_input_aware.cpp.o"
  "CMakeFiles/bench_fig8_input_aware.dir/bench_fig8_input_aware.cpp.o.d"
  "bench_fig8_input_aware"
  "bench_fig8_input_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_input_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
