# Empty compiler generated dependencies file for bench_fig8_input_aware.
# This may be replaced when dependencies are built.
