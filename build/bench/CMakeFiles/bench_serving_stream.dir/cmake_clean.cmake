file(REMOVE_RECURSE
  "CMakeFiles/bench_serving_stream.dir/bench_serving_stream.cpp.o"
  "CMakeFiles/bench_serving_stream.dir/bench_serving_stream.cpp.o.d"
  "bench_serving_stream"
  "bench_serving_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serving_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
