# Empty dependencies file for bench_serving_stream.
# This may be replaced when dependencies are built.
