file(REMOVE_RECURSE
  "CMakeFiles/adaptive_tests.dir/adaptive/controller_test.cpp.o"
  "CMakeFiles/adaptive_tests.dir/adaptive/controller_test.cpp.o.d"
  "CMakeFiles/adaptive_tests.dir/adaptive/monitor_test.cpp.o"
  "CMakeFiles/adaptive_tests.dir/adaptive/monitor_test.cpp.o.d"
  "adaptive_tests"
  "adaptive_tests.pdb"
  "adaptive_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
