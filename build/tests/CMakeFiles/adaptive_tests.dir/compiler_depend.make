# Empty compiler generated dependencies file for adaptive_tests.
# This may be replaced when dependencies are built.
