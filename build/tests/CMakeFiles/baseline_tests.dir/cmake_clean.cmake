file(REMOVE_RECURSE
  "CMakeFiles/baseline_tests.dir/baselines/acquisition_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/baselines/acquisition_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/baselines/bo_options_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/baselines/bo_options_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/baselines/bo_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/baselines/bo_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/baselines/gp_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/baselines/gp_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/baselines/kernel_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/baselines/kernel_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/baselines/lhs_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/baselines/lhs_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/baselines/linalg_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/baselines/linalg_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/baselines/maff_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/baselines/maff_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/baselines/oracle_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/baselines/oracle_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/baselines/random_search_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/baselines/random_search_test.cpp.o.d"
  "baseline_tests"
  "baseline_tests.pdb"
  "baseline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
