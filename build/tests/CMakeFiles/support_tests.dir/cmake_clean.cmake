file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/support/contracts_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/contracts_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/grid_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/grid_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/log_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/log_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/rng_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/statistics_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/statistics_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/strings_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/strings_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/table_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/table_test.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
