file(REMOVE_RECURSE
  "CMakeFiles/platform_tests.dir/platform/coldstart_test.cpp.o"
  "CMakeFiles/platform_tests.dir/platform/coldstart_test.cpp.o.d"
  "CMakeFiles/platform_tests.dir/platform/executor_edge_test.cpp.o"
  "CMakeFiles/platform_tests.dir/platform/executor_edge_test.cpp.o.d"
  "CMakeFiles/platform_tests.dir/platform/executor_test.cpp.o"
  "CMakeFiles/platform_tests.dir/platform/executor_test.cpp.o.d"
  "CMakeFiles/platform_tests.dir/platform/pricing_test.cpp.o"
  "CMakeFiles/platform_tests.dir/platform/pricing_test.cpp.o.d"
  "CMakeFiles/platform_tests.dir/platform/profiler_test.cpp.o"
  "CMakeFiles/platform_tests.dir/platform/profiler_test.cpp.o.d"
  "CMakeFiles/platform_tests.dir/platform/resource_test.cpp.o"
  "CMakeFiles/platform_tests.dir/platform/resource_test.cpp.o.d"
  "CMakeFiles/platform_tests.dir/platform/workflow_test.cpp.o"
  "CMakeFiles/platform_tests.dir/platform/workflow_test.cpp.o.d"
  "platform_tests"
  "platform_tests.pdb"
  "platform_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
