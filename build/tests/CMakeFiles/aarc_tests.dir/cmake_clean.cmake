file(REMOVE_RECURSE
  "CMakeFiles/aarc_tests.dir/aarc/advisor_test.cpp.o"
  "CMakeFiles/aarc_tests.dir/aarc/advisor_test.cpp.o.d"
  "CMakeFiles/aarc_tests.dir/aarc/configurator_test.cpp.o"
  "CMakeFiles/aarc_tests.dir/aarc/configurator_test.cpp.o.d"
  "CMakeFiles/aarc_tests.dir/aarc/operation_test.cpp.o"
  "CMakeFiles/aarc_tests.dir/aarc/operation_test.cpp.o.d"
  "CMakeFiles/aarc_tests.dir/aarc/property_test.cpp.o"
  "CMakeFiles/aarc_tests.dir/aarc/property_test.cpp.o.d"
  "CMakeFiles/aarc_tests.dir/aarc/scheduler_options_test.cpp.o"
  "CMakeFiles/aarc_tests.dir/aarc/scheduler_options_test.cpp.o.d"
  "CMakeFiles/aarc_tests.dir/aarc/scheduler_test.cpp.o"
  "CMakeFiles/aarc_tests.dir/aarc/scheduler_test.cpp.o.d"
  "CMakeFiles/aarc_tests.dir/aarc/trace_invariants_test.cpp.o"
  "CMakeFiles/aarc_tests.dir/aarc/trace_invariants_test.cpp.o.d"
  "aarc_tests"
  "aarc_tests.pdb"
  "aarc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aarc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
