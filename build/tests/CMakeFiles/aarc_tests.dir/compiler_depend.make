# Empty compiler generated dependencies file for aarc_tests.
# This may be replaced when dependencies are built.
