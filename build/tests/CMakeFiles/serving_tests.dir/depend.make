# Empty dependencies file for serving_tests.
# This may be replaced when dependencies are built.
