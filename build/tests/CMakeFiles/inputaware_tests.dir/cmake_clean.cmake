file(REMOVE_RECURSE
  "CMakeFiles/inputaware_tests.dir/inputaware/descriptor_test.cpp.o"
  "CMakeFiles/inputaware_tests.dir/inputaware/descriptor_test.cpp.o.d"
  "CMakeFiles/inputaware_tests.dir/inputaware/engine_test.cpp.o"
  "CMakeFiles/inputaware_tests.dir/inputaware/engine_test.cpp.o.d"
  "CMakeFiles/inputaware_tests.dir/inputaware/thresholds_test.cpp.o"
  "CMakeFiles/inputaware_tests.dir/inputaware/thresholds_test.cpp.o.d"
  "inputaware_tests"
  "inputaware_tests.pdb"
  "inputaware_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inputaware_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
