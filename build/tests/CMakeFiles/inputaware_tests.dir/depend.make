# Empty dependencies file for inputaware_tests.
# This may be replaced when dependencies are built.
