file(REMOVE_RECURSE
  "CMakeFiles/dag_tests.dir/dag/analysis_test.cpp.o"
  "CMakeFiles/dag_tests.dir/dag/analysis_test.cpp.o.d"
  "CMakeFiles/dag_tests.dir/dag/critical_path_test.cpp.o"
  "CMakeFiles/dag_tests.dir/dag/critical_path_test.cpp.o.d"
  "CMakeFiles/dag_tests.dir/dag/detour_test.cpp.o"
  "CMakeFiles/dag_tests.dir/dag/detour_test.cpp.o.d"
  "CMakeFiles/dag_tests.dir/dag/dot_test.cpp.o"
  "CMakeFiles/dag_tests.dir/dag/dot_test.cpp.o.d"
  "CMakeFiles/dag_tests.dir/dag/graph_test.cpp.o"
  "CMakeFiles/dag_tests.dir/dag/graph_test.cpp.o.d"
  "CMakeFiles/dag_tests.dir/dag/path_test.cpp.o"
  "CMakeFiles/dag_tests.dir/dag/path_test.cpp.o.d"
  "CMakeFiles/dag_tests.dir/dag/property_test.cpp.o"
  "CMakeFiles/dag_tests.dir/dag/property_test.cpp.o.d"
  "dag_tests"
  "dag_tests.pdb"
  "dag_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
