// aarc_cli — command-line front end for the AARC framework.
//
// Commands:
//   export <workload> --out <file>         dump a built-in workload as JSON
//   describe <workload>                    topology, models, critical path, DOT
//   schedule <workload> [--scale S] [--out <file>]
//                                          run AARC, print/write the config
//   simulate <workload> --config <file> [--runs N] [--scale S]
//                                          validate a config (Table II protocol)
//   advise <workload> [--config <file>]    per-function affinity/cost report
//   serve <workload> [--requests N]        run a request stream on the DES
//   compare <workload>                     AARC vs BO vs MAFF vs random vs oracle
//   gen-scenarios <dir> [--count N] [--seed K]
//                                          write a seeded scenario corpus
//   sweep [--scenarios N] [--seed K]       robustness sweep: AARC vs BO vs MAFF
//                                          on generated scenarios + invariant audit
//
// <workload> is a built-in name (chatbot | ml_pipeline | video_analysis) or a
// path to a workload JSON file (see src/io/workflow_io.h for the schema) or a
// scenario file (see src/scenario/scenario_io.h; the embedded workload is
// registered in the catalog under the scenario name).

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aarc/advisor.h"
#include "aarc/scheduler.h"
#include "baselines/bo/bo_optimizer.h"
#include "dag/analysis.h"
#include "baselines/maff/maff.h"
#include "baselines/oracle.h"
#include "baselines/random_search.h"
#include "dag/critical_path.h"
#include "dag/dot.h"
#include "io/chaos_io.h"
#include "io/trace_io.h"
#include "io/workflow_io.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "platform/profiler.h"
#include "serving/arrivals.h"
#include "serving/engine.h"
#include "serving/reconfigurator.h"
#include "serving/simulator.h"
#include "report/advisory.h"
#include "report/comparison.h"
#include "report/metrics_report.h"
#include "scenario/generator.h"
#include "scenario/scenario_io.h"
#include "scenario/sweep.h"
#include "support/strings.h"
#include "workloads/catalog.h"

#include <filesystem>

using namespace aarc;

namespace {

struct Args {
  std::string command;
  std::string workload;
  std::map<std::string, std::string> options;
};

Args parse_args(int argc, char** argv) {
  // Old flag spellings keep working as hidden aliases of the canonical
  // names, with a one-line nudge on stderr.
  static const std::map<std::string, std::string> kAliases = {
      {"retry-attempts", "retries"},
      {"invocation-timeout", "timeout"},
      {"rate", "target-rps"},
  };
  Args args;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      // Value-less by design: print usage and exit successfully.
      args.options["help"] = "on";
      continue;
    }
    if (support::starts_with(token, "--")) {
      std::string key = token.substr(2);
      const auto alias = kAliases.find(key);
      if (alias != kAliases.end()) {
        std::cerr << "note: --" << key << " is deprecated; use --" << alias->second
                  << "\n";
        key = alias->second;
      }
      if (i + 1 >= argc) throw std::runtime_error("missing value for --" + key);
      args.options[key] = argv[++i];
    } else {
      positional.push_back(token);
    }
  }
  if (!positional.empty()) args.command = positional[0];
  if (positional.size() > 1) args.workload = positional[1];
  return args;
}

workloads::Workload load_workload(const std::string& name_or_path) {
  for (const auto& name : workloads::all_workload_names()) {
    if (name == name_or_path) return workloads::make_by_name(name);
  }
  const io::Json doc = io::parse_json(io::read_text_file(name_or_path));
  if (doc.is_object() && doc.contains("schema") && doc.at("schema").is_string() &&
      doc.at("schema").as_string() == scenario::kScenarioSchema) {
    // Scenario file: register the embedded workload so the rest of this run
    // (and any catalog-driven code path) can find it by name.
    scenario::Scenario s = scenario::scenario_from_json(doc);
    workloads::register_workload(s.name, std::move(s.workload));
    return workloads::make_by_name(s.name);
  }
  return io::workload_from_json(doc);
}

double option_number(const Args& args, const std::string& key, double fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : std::stod(it->second);
}

bool option_switch(const Args& args, const std::string& key, bool fallback) {
  const auto it = args.options.find(key);
  if (it == args.options.end()) return fallback;
  if (it->second == "on") return true;
  if (it->second == "off") return false;
  throw std::runtime_error("--" + key + " expects on|off");
}

/// Search-engine flags shared by schedule/compare: --threads, --probe-cache.
search::EvaluatorOptions search_evaluator_options(const Args& args) {
  search::EvaluatorOptions opts;
  opts.threads = static_cast<std::size_t>(option_number(args, "threads", 1));
  if (opts.threads == 0) throw std::runtime_error("--threads must be >= 1");
  opts.probe_cache = option_switch(args, "probe-cache", false);
  return opts;
}

/// Probabilistic-SLO flags shared by schedule/compare/serve (doc/SLO.md):
/// --slo-metric mean|p50|p95|p99 and --slo-confidence in (0, 1].  The
/// defaults (mean, 1.0) reproduce the paper's single-sample point checks
/// exactly; anything else makes every accept/revert verdict probe
/// SloBound::min_replicates() times.
search::SloBound slo_bound_options(const Args& args) {
  search::SloBound bound;
  const auto metric = args.options.find("slo-metric");
  if (metric != args.options.end()) {
    try {
      bound.metric = search::slo_metric_from_string(metric->second);
    } catch (const std::exception&) {
      throw std::runtime_error("--slo-metric expects mean|p50|p95|p99 (got '" +
                               metric->second + "')");
    }
  }
  bound.confidence = option_number(args, "slo-confidence", bound.confidence);
  if (!(bound.confidence > 0.0) || bound.confidence > 1.0) {
    throw std::runtime_error("--slo-confidence must be in (0, 1] (got " +
                             support::format_double(bound.confidence, 3) + ")");
  }
  bound.validate();
  return bound;
}

/// --cost-bound: the dual mode's budget (0 = off; doc/SLO.md).
double cost_bound_option(const Args& args) {
  const double bound = option_number(args, "cost-bound", 0.0);
  if (bound < 0.0) {
    throw std::runtime_error("--cost-bound must be non-negative (got " +
                             support::format_double(bound, 3) + ")");
  }
  return bound;
}

/// Fault-injection flags shared by schedule/simulate/serve: --fault-rate,
/// --straggler-rate, --retries, --retry-backoff, --timeout.  Out-of-range
/// values fail with the flag name, the offending value and the valid range,
/// so the fix is obvious from the message alone.
platform::ExecutorOptions fault_executor_options(const Args& args) {
  const auto require_probability = [&](const char* flag, double value) {
    if (value < 0.0 || value > 1.0) {
      throw std::runtime_error("--" + std::string(flag) + " must be in [0, 1] (got " +
                               support::format_double(value, 3) + ")");
    }
    return value;
  };
  const auto require_non_negative = [&](const char* flag, double value) {
    if (value < 0.0) {
      throw std::runtime_error("--" + std::string(flag) +
                               " must be non-negative (got " +
                               support::format_double(value, 3) + ")");
    }
    return value;
  };
  platform::ExecutorOptions opts;
  platform::FaultRates rates;
  rates.transient_crash =
      require_probability("fault-rate", option_number(args, "fault-rate", 0.0));
  rates.straggler =
      require_probability("straggler-rate", option_number(args, "straggler-rate", 0.0));
  rates.validate();
  opts.faults = platform::FaultModel{rates};
  const double retries = option_number(args, "retries", 1);
  if (retries < 1.0) {
    throw std::runtime_error("--retries must be >= 1 (got " +
                             support::format_double(retries, 0) + ")");
  }
  opts.retry.max_attempts = static_cast<std::size_t>(retries);
  opts.retry.backoff_initial_seconds =
      require_non_negative("retry-backoff", option_number(args, "retry-backoff", 0.5));
  opts.retry.timeout_seconds =
      require_non_negative("timeout", option_number(args, "timeout", 0.0));
  opts.retry.validate();
  return opts;
}

bool faults_requested(const Args& args) {
  return args.options.count("fault-rate") || args.options.count("straggler-rate") ||
         args.options.count("retries") || args.options.count("retry-backoff") ||
         args.options.count("timeout");
}

int cmd_export(const Args& args) {
  const auto w = load_workload(args.workload);
  const std::string text = io::workload_to_string(w);
  const auto out = args.options.find("out");
  if (out != args.options.end()) {
    io::write_text_file(out->second, text + "\n");
    std::cout << "wrote " << out->second << "\n";
  } else {
    std::cout << text << "\n";
  }
  return 0;
}

int cmd_describe(const Args& args) {
  const auto w = load_workload(args.workload);
  std::cout << "workflow: " << w.workflow.name() << "\n";
  const auto metrics = dag::analyze(w.workflow.graph());
  std::cout << "functions: " << metrics.node_count << ", edges: " << metrics.edge_count
            << ", depth: " << metrics.depth << ", max width: " << metrics.max_width
            << "\n";
  std::cout << "topology: " << dag::to_string(metrics.topology)
            << ", max fan-out: " << metrics.max_fan_out
            << ", max fan-in: " << metrics.max_fan_in << "\n";
  std::cout << "SLO: " << w.slo_seconds << " s, input-sensitive: "
            << (w.input_sensitive ? "yes" : "no") << "\n\n";

  // Profile under the base configuration to weight the DAG.
  const platform::Executor ex;
  platform::Workflow wf = w.workflow.clone();
  const platform::ConfigGrid grid;
  const auto base = platform::uniform_config(wf.function_count(), grid.max_config());
  const auto run = ex.execute_mean(wf, base);
  wf.mutable_graph().set_weights(run.runtimes());
  const auto cp = dag::find_critical_path(wf.graph());

  std::cout << "base-config makespan: " << support::format_double(run.makespan, 1)
            << " s\ncritical path: " << cp.to_string(wf.graph()) << "\n\n";
  std::cout << "schedule (base config):\n" << io::execution_gantt(wf, run) << "\n";
  dag::DotOptions dot;
  dot.highlight = &cp;
  std::cout << "DOT:\n" << dag::to_dot(wf.graph(), dot);
  return 0;
}

int cmd_schedule(const Args& args) {
  const auto w = load_workload(args.workload);
  const double scale = option_number(args, "scale", 1.0);
  const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(),
                              fault_executor_options(args));
  const platform::ConfigGrid grid;
  core::SchedulerOptions sched_opts;
  const auto eval_opts = search_evaluator_options(args);
  sched_opts.evaluator_threads = eval_opts.threads;
  sched_opts.probe_cache = eval_opts.probe_cache;
  sched_opts.configurator.slo = slo_bound_options(args);
  sched_opts.configurator.cost_bound = cost_bound_option(args);
  if (faults_requested(args)) {
    // On a faulty platform, let the evaluator absorb transient probe noise.
    sched_opts.probe_resamples =
        static_cast<std::size_t>(option_number(args, "probe-resamples", 2));
  }
  const core::GraphCentricScheduler scheduler(ex, grid, sched_opts);
  const auto report = scheduler.schedule(w.workflow, w.slo_seconds, scale);

  std::cout << "samples: " << report.result.samples() << ", feasible: "
            << (report.result.found_feasible ? "yes" : "no") << "\n";
  const auto trace_out = args.options.find("trace");
  if (trace_out != args.options.end()) {
    io::write_text_file(trace_out->second, io::trace_to_csv(report.result.trace));
    std::cout << "wrote " << trace_out->second << "\n";
  }
  if (!report.result.found_feasible) return 1;

  const std::string text = io::config_to_json(w.workflow, report.result.best_config).dump(2);
  const auto out = args.options.find("out");
  if (out != args.options.end()) {
    io::write_text_file(out->second, text + "\n");
    std::cout << "wrote " << out->second << "\n";
  } else {
    std::cout << text << "\n";
  }
  return 0;
}

int cmd_simulate(const Args& args) {
  const auto w = load_workload(args.workload);
  const auto config_path = args.options.find("config");
  if (config_path == args.options.end()) {
    throw std::runtime_error("simulate requires --config <file>");
  }
  const auto config = io::config_from_json(
      w.workflow, io::parse_json(io::read_text_file(config_path->second)));
  const auto runs = static_cast<std::size_t>(option_number(args, "runs", 100));
  const double scale = option_number(args, "scale", 1.0);

  const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(),
                              fault_executor_options(args));
  const platform::Profiler profiler(ex);
  support::Rng rng(static_cast<std::uint64_t>(option_number(args, "seed", 4242)));
  const auto report = profiler.profile(w.workflow, config, runs, rng, scale);

  std::cout << "runs: " << report.runs << ", OOM failures: " << report.failures << "\n";
  if (report.makespan.count > 0) {
    std::cout << "runtime: "
              << support::format_mean_std(report.makespan.mean, report.makespan.stddev, 1)
              << " s (SLO " << w.slo_seconds << " s, violation rate "
              << support::format_percent(report.slo_violation_rate(w.slo_seconds), 1)
              << ")\n";
    std::cout << "cost: mean " << support::format_double(report.cost.mean, 1)
              << " per run, total " << support::format_kilo(report.cost.sum, 1) << "\n";
  }
  return 0;
}

int cmd_advise(const Args& args) {
  const auto w = load_workload(args.workload);
  const auto config_path = args.options.find("config");
  platform::WorkflowConfig config;
  const platform::Executor ex;
  if (config_path != args.options.end()) {
    config = io::config_from_json(
        w.workflow, io::parse_json(io::read_text_file(config_path->second)));
  } else {
    // No config given: advise on what AARC itself would deploy.
    const core::GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
    auto report = scheduler.schedule(w.workflow, w.slo_seconds);
    if (!report.result.found_feasible) {
      std::cerr << "error: no feasible configuration found\n";
      return 1;
    }
    config = std::move(report.result.best_config);
  }

  const auto report =
      core::advise(w.workflow, config, ex, w.slo_seconds, option_number(args, "scale", 1.0));
  std::cout << report::advisory_headline(report) << "\n\n"
            << report::advisory_table(report, w.workflow).to_markdown();
  return 0;
}

/// Build the arrival process for `serve` from --arrivals and its knobs.
/// Forms: poisson (default) | mmpp | diurnal | trace:<file>.
std::unique_ptr<serving::ArrivalProcess> make_arrivals(const Args& args) {
  serving::ScaleSpec scales;
  scales.scale_min = option_number(args, "scale-min", 1.0);
  scales.scale_max = option_number(args, "scale-max", scales.scale_min);
  scales.drift_time = option_number(args, "drift-time", 0.0);
  scales.drift_factor = option_number(args, "drift-factor", 1.0);

  serving::ArrivalLimits limits;
  limits.max_requests = static_cast<std::size_t>(option_number(args, "requests", 50));
  limits.horizon_seconds = option_number(args, "duration", 0.0);
  if (args.options.count("duration")) limits.max_requests = static_cast<std::size_t>(
      option_number(args, "requests", 0));

  const double rps = option_number(args, "target-rps", 0.01);
  const auto seed = static_cast<std::uint64_t>(option_number(args, "seed", 77));

  const auto it = args.options.find("arrivals");
  const std::string kind = it == args.options.end() ? "poisson" : it->second;
  if (kind == "poisson") {
    return std::make_unique<serving::PoissonProcess>(rps, scales, limits, seed);
  }
  if (kind == "mmpp") {
    serving::MmppParams params;
    params.base_rate = rps;
    params.burst_rate = option_number(args, "burst-rps", 5.0 * rps);
    params.mean_base_seconds = option_number(args, "mean-base", 60.0 / rps);
    params.mean_burst_seconds = option_number(args, "mean-burst", 10.0 / rps);
    return std::make_unique<serving::MmppProcess>(params, scales, limits, seed);
  }
  if (kind == "diurnal") {
    serving::DiurnalParams params;
    params.base_rate = rps;
    params.amplitude = option_number(args, "amplitude", 0.5);
    params.period_seconds = option_number(args, "period", 3600.0);
    return std::make_unique<serving::DiurnalProcess>(params, scales, limits, seed);
  }
  if (support::starts_with(kind, "trace:")) {
    const std::string path = kind.substr(6);
    auto trace = io::arrival_trace_from_json(io::parse_json(io::read_text_file(path)));
    // The trace bounds itself; --requests/--duration only truncate it.
    limits.max_requests = static_cast<std::size_t>(option_number(args, "requests", 0));
    return std::make_unique<serving::TraceReplayProcess>(std::move(trace), limits,
                                                         scales);
  }
  throw std::runtime_error("--arrivals expects poisson|mmpp|diurnal|trace:<file>");
}

int cmd_serve(const Args& args) {
  const auto w = load_workload(args.workload);
  const platform::Executor ex;
  const platform::ConfigGrid grid;

  // Configuration: from --config, or scheduled by AARC on the spot.
  platform::WorkflowConfig config;
  const auto config_path = args.options.find("config");
  if (config_path != args.options.end()) {
    config = io::config_from_json(
        w.workflow, io::parse_json(io::read_text_file(config_path->second)));
  } else {
    core::SchedulerOptions sched_opts;
    sched_opts.configurator.slo = slo_bound_options(args);
    sched_opts.configurator.cost_bound = cost_bound_option(args);
    const core::GraphCentricScheduler scheduler(ex, grid, sched_opts);
    auto report = scheduler.schedule(w.workflow, w.slo_seconds);
    if (!report.result.found_feasible) {
      std::cerr << "error: no feasible configuration found\n";
      return 1;
    }
    config = std::move(report.result.best_config);
  }

  const platform::DecoupledLinearPricing pricing;
  serving::EngineOptions eopts;
  eopts.keep_alive_seconds = option_number(args, "keep-alive", 600.0);
  eopts.max_containers_per_function =
      static_cast<std::size_t>(option_number(args, "max-containers", 0));
  eopts.admission.max_queue_per_function =
      static_cast<std::size_t>(option_number(args, "queue-cap", 0));
  eopts.autoscaler.enabled = option_switch(args, "autoscale", false);
  eopts.autoscaler.min_warm =
      static_cast<std::size_t>(option_number(args, "min-warm", 0));
  eopts.slo_seconds = w.slo_seconds;
  eopts.window_seconds = option_number(args, "window", 0.0);
  eopts.retain_outcomes = args.options.count("timeline") != 0;
  const auto fault_opts = fault_executor_options(args);
  eopts.faults = fault_opts.faults;
  eopts.retry = fault_opts.retry;

  // --chaos: a JSON incident profile layered over the fault rates
  // (doc/RESILIENCE.md).  Errors carry the file name so a bad profile is
  // diagnosable from the message alone.
  const auto chaos_path = args.options.find("chaos");
  if (chaos_path != args.options.end()) {
    try {
      eopts.chaos = io::chaos_profile_from_json(
          w.workflow, io::parse_json(io::read_text_file(chaos_path->second)));
    } catch (const std::exception& e) {
      throw std::runtime_error("chaos profile " + chaos_path->second + ": " +
                               e.what());
    }
  }
  eopts.resilience.breaker.enabled = option_switch(args, "breaker", false);
  eopts.resilience.hedge.delay_seconds = option_number(args, "hedge-delay", 0.0);
  eopts.resilience.shed.queue_high_watermark =
      static_cast<std::size_t>(option_number(args, "shed-watermark", 0));
  eopts.resilience.shed.sheddable_fraction =
      option_number(args, "shed-fraction", 0.5);

  auto arrivals = make_arrivals(args);
  const serving::ServingEngine engine(w.workflow, pricing, eopts);

  // --online-reconfig: wrap the config in the drift-triggered control plane.
  serving::StreamingReport report;
  std::unique_ptr<serving::OnlineReconfigurator> reconfigurator;
  if (option_switch(args, "online-reconfig", false)) {
    const auto expectation = ex.execute_mean(w.workflow, config);
    const double expected =
        expectation.failed ? w.slo_seconds : expectation.makespan;
    serving::ReconfigOptions ropts;
    ropts.scheduler.configurator.slo = slo_bound_options(args);
    ropts.scheduler.configurator.cost_bound = cost_bound_option(args);
    ropts.min_outcomes_between_reconfigs =
        static_cast<std::size_t>(option_number(args, "reconfig-cooldown", 50));
    // Attainment windows that outlast the trigger cadence never fill; match
    // them to the cooldown by default.
    ropts.attainment_window = static_cast<std::size_t>(option_number(
        args, "reconfig-window",
        static_cast<double>(ropts.min_outcomes_between_reconfigs)));
    ropts.fallback_degraded = option_switch(args, "degraded-fallback", false);
    reconfigurator = std::make_unique<serving::OnlineReconfigurator>(
        w, ex, grid, std::move(config), expected, ropts);
    report = engine.run(*arrivals, *reconfigurator);
  } else {
    report = engine.run(*arrivals, config);
  }

  std::cout << "served " << report.requests << " requests ("
            << report.failed_requests << " failed, " << report.rejected_requests
            << " rejected) over " << support::format_double(report.duration_seconds, 1)
            << " s\n";
  if (faults_requested(args)) {
    std::cout << "retries: " << report.retries << ", timeouts: " << report.timeouts
              << ", failed after retries: " << report.failed_after_retries
              << ", failure rate: "
              << support::format_percent(report.request_failure_rate(), 1) << "\n";
  }
  if (report.latency.count > 0) {
    std::cout << "latency: "
              << support::format_mean_std(report.latency.mean, report.latency.stddev, 1)
              << " s (p50 " << support::format_double(report.latency_p50(), 1)
              << ", p95 " << support::format_double(report.latency_p95(), 1) << ", p99 "
              << support::format_double(report.latency_p99(), 1) << ", max "
              << support::format_double(report.latency.max, 1) << ")\n";
  }
  // Failure-aware: failed requests count as violations, so print this even
  // when no request completed.
  std::cout << "SLO violation rate: "
            << support::format_percent(report.slo_violation_rate(), 1)
            << " (SLO " << support::format_double(w.slo_seconds, 0)
            << " s, attainment "
            << support::format_percent(report.slo_attainment(), 1) << ")\n";
  std::cout << "total cost: " << support::format_double(report.total_cost, 1)
            << ", cold starts: " << report.cold_starts << " of "
            << report.cold_starts + report.warm_starts
            << " invocations, peak containers: " << report.peak_containers << "\n";
  if (eopts.autoscaler.enabled) {
    std::cout << "autoscaler: " << report.prewarmed_containers << " pre-warmed, "
              << report.retired_containers << " retired (" << report.autoscale_ups
              << " up / " << report.autoscale_downs << " down ticks)\n";
  }
  if (!eopts.chaos.empty()) {
    std::cout << "chaos: " << eopts.chaos.size() << " incidents, "
              << report.chaos_modulated_attempts << " attempts modulated\n";
  }
  if (eopts.resilience.any_enabled()) {
    std::cout << "resilience: " << report.breaker_opens << " breaker opens, "
              << report.breaker_fastfail_requests << " fast-failed, "
              << report.shed_requests << " shed, " << report.hedges << " hedges ("
              << report.hedge_wins << " won)\n";
  }
  if (reconfigurator != nullptr) {
    std::cout << "reconfigurations: " << reconfigurator->reconfigurations() << " ("
              << reconfigurator->scheduling_samples() << " samples)\n";
    for (const auto& ev : reconfigurator->events()) {
      std::cout << "  trigger t=" << support::format_double(ev.trigger_time, 1)
                << " s, lag " << support::format_double(ev.lag_seconds, 1)
                << " s, scale " << support::format_double(ev.new_scale, 2)
                << (ev.activated ? "" : " (not activated)")
                << (ev.degraded ? " (degraded fallback)" : "") << ", attainment "
                << support::format_percent(ev.pre_slo_attainment, 1) << " -> "
                << (ev.post_window_complete
                        ? support::format_percent(ev.post_slo_attainment, 1)
                        : std::string("n/a"))
                << "\n";
    }
  }

  const auto timeline = args.options.find("timeline");
  if (timeline != args.options.end()) {
    io::write_text_file(timeline->second, io::serving_timeline_to_csv(report));
    std::cout << "wrote " << timeline->second << "\n";
  }
  const auto windows = args.options.find("windows");
  if (windows != args.options.end()) {
    if (report.windows.empty()) {
      std::cerr << "note: --windows needs --window <seconds> to aggregate\n";
    }
    io::write_text_file(windows->second, io::serving_windows_to_csv(report));
    std::cout << "wrote " << windows->second << "\n";
  }
  return 0;
}

int cmd_compare(const Args& args) {
  const auto w = load_workload(args.workload);
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  const platform::Profiler profiler(ex);
  const search::EvaluatorOptions eval_opts = search_evaluator_options(args);
  const search::SloBound slo_bound = slo_bound_options(args);

  std::vector<report::MethodRun> runs;
  std::vector<report::ValidationRun> validations;
  auto record = [&](const std::string& method, search::SearchResult result) {
    if (result.found_feasible) {
      support::Rng rng(4242);
      report::ValidationRun v;
      v.method = method;
      v.workload = w.workflow.name();
      v.slo_seconds = w.slo_seconds;
      v.profile = profiler.profile(w.workflow, result.best_config, 100, rng);
      validations.push_back(std::move(v));
    }
    runs.push_back({method, w.workflow.name(), std::move(result)});
  };

  {
    core::SchedulerOptions sched_opts;
    sched_opts.evaluator_threads = eval_opts.threads;
    sched_opts.probe_cache = eval_opts.probe_cache;
    sched_opts.configurator.slo = slo_bound;
    sched_opts.configurator.cost_bound = cost_bound_option(args);
    const core::GraphCentricScheduler scheduler(ex, grid, sched_opts);
    record("AARC", scheduler.schedule(w.workflow, w.slo_seconds).result);
  }
  {
    search::Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 3101, eval_opts);
    baselines::BoOptions bo;
    bo.batch_size = eval_opts.threads;  // one acquisition batch per worker set
    bo.slo = slo_bound;
    record("BO", baselines::bayesian_optimization(ev, grid, bo));
  }
  {
    search::Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 3202, eval_opts);
    baselines::MaffOptions maff;
    maff.slo = slo_bound;
    record("MAFF", baselines::maff_gradient_descent(ev, grid, maff));
  }
  {
    search::Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 3303, eval_opts);
    record("random", baselines::random_search(ev, grid));
  }

  std::cout << "== search totals ==\n"
            << report::search_totals_table(runs).to_markdown() << "\n";
  std::cout << "== validation (100 runs) ==\n"
            << report::validation_table(validations).to_markdown() << "\n";

  const auto oracle = baselines::oracle_search(w.workflow, ex, grid, w.slo_seconds);
  if (oracle.feasible) {
    std::cout << "== white-box oracle (model lower bound) ==\n";
    std::cout << "mean cost " << support::format_double(oracle.mean_cost, 1)
              << ", mean runtime " << support::format_double(oracle.mean_makespan, 1)
              << " s, " << oracle.evaluations << " model evaluations\n";
  }
  return 0;
}

/// Generator knobs shared by gen-scenarios and sweep: --chaos-prob plus the
/// taxonomy size bounds (defaults from GeneratorOptions).
scenario::GeneratorOptions generator_options(const Args& args) {
  scenario::GeneratorOptions gen;
  gen.chaos_probability = option_number(args, "chaos-prob", gen.chaos_probability);
  gen.percentile_slo_probability =
      option_number(args, "percentile-slo", gen.percentile_slo_probability);
  gen.max_depth = static_cast<std::size_t>(
      option_number(args, "max-depth", static_cast<double>(gen.max_depth)));
  gen.max_width = static_cast<std::size_t>(
      option_number(args, "max-width", static_cast<double>(gen.max_width)));
  gen.validate();
  return gen;
}

int cmd_gen_scenarios(const Args& args) {
  // The workload positional doubles as the output directory.
  const std::string dir = args.workload;
  const auto count = static_cast<std::size_t>(option_number(args, "count", 25));
  const auto seed = static_cast<std::uint64_t>(option_number(args, "seed", 42));
  const auto corpus = scenario::generate_corpus(seed, count, generator_options(args));
  std::filesystem::create_directories(dir);
  for (const auto& s : corpus) {
    const std::string path = dir + "/" + s.name + ".json";
    io::write_text_file(path, scenario::scenario_to_string(s));
    std::cout << path << "  (" << s.workload.workflow.function_count()
              << " functions, SLO " << support::format_double(s.workload.slo_seconds, 1)
              << " s" << (s.chaos.empty() ? "" : ", chaos") << ")\n";
  }
  std::cout << "wrote " << corpus.size() << " scenarios to " << dir << "\n";
  return 0;
}

int cmd_sweep(const Args& args) {
  scenario::SweepOptions opts;
  opts.scenario_count = static_cast<std::size_t>(option_number(args, "scenarios", 25));
  opts.seed = static_cast<std::uint64_t>(option_number(args, "seed", 42));
  opts.generator = generator_options(args);
  opts.threads = static_cast<std::size_t>(option_number(args, "threads", 1));
  opts.probe_cache = option_switch(args, "probe-cache", true);
  opts.bo_max_samples = static_cast<std::size_t>(
      option_number(args, "bo-samples", static_cast<double>(opts.bo_max_samples)));
  opts.maff_max_samples = static_cast<std::size_t>(option_number(
      args, "maff-samples", static_cast<double>(opts.maff_max_samples)));
  opts.validation_runs = static_cast<std::size_t>(option_number(
      args, "validation-runs", static_cast<double>(opts.validation_runs)));
  opts.deep_audit_stride = static_cast<std::size_t>(option_number(
      args, "deep-audit-stride", static_cast<double>(opts.deep_audit_stride)));
  opts.validate();

  const auto result = scenario::run_sweep(opts, [](const scenario::ScenarioOutcome& o) {
    std::cout << o.name << ": aarc "
              << (o.aarc.feasible ? support::format_double(o.aarc.mean_cost, 1)
                                  : std::string("infeasible"))
              << " | bo "
              << (o.bo.feasible ? support::format_double(o.bo.mean_cost, 1)
                                : std::string("infeasible"))
              << " | maff "
              << (o.maff.feasible ? support::format_double(o.maff.mean_cost, 1)
                                  : std::string("infeasible"))
              << (o.aarc_win ? "  -> win" : "")
              << (o.violations != 0 ? "  !! AUDIT" : "") << "\n";
  });

  std::cout << "\nscenarios: " << result.scenarios.size() << ", AARC wins: "
            << result.wins() << " ("
            << support::format_percent(result.aarc_win_rate(), 1) << ")\n";
  std::cout << "audit violations: " << result.violations.size() << "\n";
  for (const auto& v : result.violations) std::cout << "  " << to_string(v) << "\n";

  const auto out = args.options.find("out");
  if (out != args.options.end()) {
    io::write_text_file(out->second, scenario::sweep_to_json(opts, result).dump(2) + "\n");
    std::cout << "wrote " << out->second << "\n";
  }
  return result.violations.empty() ? 0 : 1;
}

/// The run's primary seed for the manifest: --seed when given, else the
/// default the dispatched command actually uses.
std::uint64_t manifest_seed(const Args& args) {
  double fallback = 0.0;
  if (args.command == "schedule" || args.command == "compare" ||
      args.command == "advise") {
    fallback = static_cast<double>(core::SchedulerOptions{}.seed);
  } else if (args.command == "simulate") {
    fallback = 4242.0;
  } else if (args.command == "serve") {
    fallback = 77.0;
  } else if (args.command == "sweep" || args.command == "gen-scenarios") {
    fallback = 42.0;
  }
  return static_cast<std::uint64_t>(option_number(args, "seed", fallback));
}

/// --metrics-out: snapshot the global registry into a run-manifest JSON and
/// print the summary table.  --trace-out: export the span trace (Chrome
/// trace_event JSON, or JSONL when the file ends in .jsonl).  Both document
/// the run that just happened, so they run after the command, pass or fail.
void write_observability_artifacts(const Args& args) {
  const auto metrics_out = args.options.find("metrics-out");
  if (metrics_out != args.options.end()) {
    obs::RunManifest manifest;
    manifest.command = args.command;
    manifest.workload = args.workload;
    manifest.seed = manifest_seed(args);
    for (const auto& [key, value] : args.options) manifest.add_option(key, value);
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    io::write_text_file(metrics_out->second, manifest.to_json(snapshot));
    std::cout << "wrote " << metrics_out->second << "\n";
    std::cout << "== metrics ==\n"
              << report::metrics_summary(snapshot).to_markdown();
  }
  const auto trace_out = args.options.find("trace-out");
  if (trace_out != args.options.end()) {
    const obs::Tracer& tracer = obs::Tracer::global();
    const bool jsonl = support::ends_with(trace_out->second, ".jsonl");
    io::write_text_file(trace_out->second,
                        jsonl ? tracer.to_jsonl() : tracer.to_trace_event_json());
    std::cout << "wrote " << trace_out->second << " (" << tracer.size()
              << " spans)\n";
  }
}

int usage() {
  std::cout << "usage: aarc_cli <command> <workload> [options]\n"
               "commands:\n"
               "  export   <workload>                 dump the workload as JSON\n"
               "  describe <workload>                 topology, critical path, DOT\n"
               "  schedule <workload>                 run AARC, print/write the config\n"
               "  simulate <workload> --config file   validate a config (Table II)\n"
               "  advise   <workload>                 per-function affinity report\n"
               "  serve    <workload>                 run a request stream on the DES\n"
               "  compare  <workload>                 AARC vs BO vs MAFF vs random\n"
               "  gen-scenarios <dir>                 write a seeded scenario corpus\n"
               "  sweep                               robustness sweep + invariant audit\n"
               "                                      (see doc/SCENARIOS.md)\n"
               "platform (simulate | serve):\n"
               "  --scale S            input scale multiplier (default 1)\n"
               "  --runs N             simulate: validation executions (default 100)\n"
               "  --keep-alive S       serve: container keep-alive seconds\n"
               "  --seed K             rng seed for validation / the stream\n"
               "arrivals (serve; see doc/SERVING.md):\n"
               "  --arrivals KIND      poisson (default) | mmpp | diurnal |\n"
               "                       trace:<file> (JSON arrival trace)\n"
               "  --requests N         stop after N requests (default 50;\n"
               "                       0 = unbounded when --duration is set)\n"
               "  --duration S         stop generating after S simulated seconds\n"
               "  --target-rps R       mean arrival rate (default 0.01)\n"
               "  --scale-min/-max S   input-scale range per request (default 1)\n"
               "  --drift-time S       inject input drift at this time...\n"
               "  --drift-factor F     ...multiplying scales by F (default 1)\n"
               "  --burst-rps R        mmpp: burst-state rate (default 5x base)\n"
               "  --amplitude A        diurnal: relative amplitude in [0,1)\n"
               "  --period S           diurnal: period seconds (default 3600)\n"
               "serving engine (serve):\n"
               "  --max-containers N   per-function concurrency cap (0 = off)\n"
               "  --queue-cap N        admission control: max waiting invocations\n"
               "                       per function; excess requests are rejected\n"
               "  --autoscale on|off   reactive autoscaler (default off)\n"
               "  --min-warm N         autoscaler warm-container floor\n"
               "  --online-reconfig on|off\n"
               "                       drift-triggered AARC re-run + hot-swap\n"
               "  --reconfig-cooldown N\n"
               "                       outcomes between reconfigurations (50)\n"
               "  --window S           aggregate a throughput/SLO time series\n"
               "  --timeline file.csv  write the per-request timeline\n"
               "  --windows file.csv   write the windowed series (needs --window)\n"
               "chaos + resilience (serve; see doc/RESILIENCE.md):\n"
               "  --chaos file.json    incident profile (outages, brownouts,\n"
               "                       throttle storms) over simulated time\n"
               "  --breaker on|off     per-function circuit breakers (default off)\n"
               "  --hedge-delay S      hedge straggling attempts after S seconds\n"
               "                       (0 = off)\n"
               "  --shed-watermark N   shed low-priority arrivals while more than\n"
               "                       N invocations queue (0 = off)\n"
               "  --shed-fraction F    fraction of requests sheddable (default 0.5)\n"
               "  --degraded-fallback on|off\n"
               "                       online-reconfig: deploy a relaxed-SLO or\n"
               "                       grid-max config when rescheduling is\n"
               "                       infeasible; recover when feasible again\n"
               "faults (schedule | simulate | serve):\n"
               "  --fault-rate P       transient crash probability per invocation\n"
               "  --straggler-rate P   straggler (slowdown) probability\n"
               "  --retries N          attempts per invocation (default 1 = off)\n"
               "  --retry-backoff S    initial retry backoff seconds (default 0.5)\n"
               "  --timeout S          per-attempt timeout seconds (0 = none)\n"
               "  --probe-resamples N  schedule only: probe re-runs on failure\n"
               "scenarios (gen-scenarios | sweep; see doc/SCENARIOS.md):\n"
               "  --count N            gen-scenarios: corpus size (default 25)\n"
               "  --scenarios N        sweep: scenario count (default 25)\n"
               "  --seed K             corpus seed (default 42); same seed =>\n"
               "                       byte-identical scenarios and sweep results\n"
               "  --chaos-prob P       probability of a chaos overlay (default 0)\n"
               "  --percentile-slo P   probability a scenario draws a percentile\n"
               "                       SLO bound (p50/p95 with confidence; default 0)\n"
               "  --max-depth/-width N taxonomy size bounds\n"
               "  --bo-samples N       sweep: BO billed-sample budget (default 60)\n"
               "  --maff-samples N     sweep: MAFF billed-sample budget (default 60)\n"
               "  --validation-runs N  sweep: noisy validations per config (40)\n"
               "  --deep-audit-stride N\n"
               "                       sweep: serving/threads audits every Nth\n"
               "                       scenario (default 10, 0 = off)\n"
               "search (schedule | compare):\n"
               "  --threads N          evaluator worker threads; results are\n"
               "                       identical for every value (default 1)\n"
               "  --probe-cache on|off memoize repeated probe configurations\n"
               "probabilistic SLO (schedule | compare | serve; see doc/SLO.md):\n"
               "  --slo-metric M       mean (default) | p50 | p95 | p99\n"
               "  --slo-confidence C   verdict confidence in (0, 1]; a non-default\n"
               "                       bound probes every accept/revert decision\n"
               "                       min_replicates() times (default 1)\n"
               "  --cost-bound B       dual mode: minimize latency subject to\n"
               "                       total cost <= B under the same bound\n"
               "                       (0 = off)\n"
               "output:\n"
               "  --out file           export | schedule: write instead of print;\n"
               "                       sweep: write the aggregate JSON report\n"
               "  --trace file.csv     schedule: write the probe trace as CSV\n"
               "  --config file        simulate | advise | serve: config to use\n"
               "observability (all commands; see doc/OBSERVABILITY.md):\n"
               "  --metrics-out file   write the run manifest (options + metrics\n"
               "                       snapshot) as JSON; prints a summary table\n"
               "  --trace-out file     record spans; write Chrome trace_event JSON\n"
               "                       (open in ui.perfetto.dev), or JSONL when\n"
               "                       the file ends in .jsonl\n"
               "misc:\n"
               "  --help               print this message and exit\n"
               "workload: chatbot | ml_pipeline | video_analysis | data_analytics |\n"
               "          path/to/workload.json\n";
  return 2;
}

}  // namespace

int run_command(const Args& args) {
  if (args.command == "export") return cmd_export(args);
  if (args.command == "describe") return cmd_describe(args);
  if (args.command == "schedule") return cmd_schedule(args);
  if (args.command == "simulate") return cmd_simulate(args);
  if (args.command == "advise") return cmd_advise(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "compare") return cmd_compare(args);
  if (args.command == "gen-scenarios") return cmd_gen_scenarios(args);
  if (args.command == "sweep") return cmd_sweep(args);
  return usage();
}

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.options.count("help") != 0) {
      usage();
      return 0;
    }
    // sweep runs on generated scenarios; it takes no workload positional.
    const bool needs_workload = args.command != "sweep";
    if (args.command.empty() || (needs_workload && args.workload.empty())) {
      return usage();
    }
    // Span recording is opt-in (timestamps cost a little and are only useful
    // when exported); metrics are always on — they're cheaper than the
    // platform work they count.
    if (args.options.count("trace-out") != 0) {
      obs::Tracer::global().set_enabled(true);
    }
    const int rc = run_command(args);
    write_observability_artifacts(args);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
