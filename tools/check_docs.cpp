// check_docs — documentation consistency checker, wired as a CTest.
//
// Four guarantees, all against the code as built:
//
//   1. Metric catalog <-> doc/OBSERVABILITY.md agree in both directions.
//      Every metric row in the doc's catalog tables (a table row whose kind
//      cell is counter/gauge/histogram) must name a metric in
//      obs::metric_catalog(), and every catalogued metric must appear
//      somewhere in the doc.  Renaming or adding a metric without updating
//      the doc fails `ctest`.
//
//   2. Relative markdown links resolve.  Every [text](path.md) style link in
//      README.md, DESIGN.md, ROADMAP.md and doc/*.md must point at a file
//      that exists (anchors are stripped; absolute URLs are ignored).
//
//   3. Bench names are real.  Every `bench_*` token in the documentation set
//      (plus EXPERIMENTS.md) must name a bench/<token>.cpp target; a
//      `<target>_smoke` token is the target's CTest and counts when the
//      target exists.  Tokens immediately followed by '.' are file names
//      (bench_json.h, bench_output.txt), not target claims.
//
//   4. Documented flags exist.  Every `--flag` token in the documentation
//      set must appear in the CLI source (tools/aarc_cli.cpp) or a bench
//      source — as the literal `--flag` or as the option key `"flag"` —
//      modulo a short allowlist of external tools' flags quoted in shell
//      examples (git describe --always --dirty, ctest --output-on-failure).
//
// Usage: check_docs <repo_root>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metric_names.h"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string trim(const std::string& text) {
  std::size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split_cells(const std::string& row) {
  std::vector<std::string> cells;
  std::string cell;
  // Skip the leading '|'; every '|' afterwards closes a cell.
  for (std::size_t i = 1; i < row.size(); ++i) {
    if (row[i] == '|') {
      cells.push_back(trim(cell));
      cell.clear();
    } else {
      cell += row[i];
    }
  }
  return cells;
}

/// First `backticked` token of a string, or "" when none.
std::string first_backticked(const std::string& text) {
  const std::size_t open = text.find('`');
  if (open == std::string::npos) return "";
  const std::size_t close = text.find('`', open + 1);
  if (close == std::string::npos) return "";
  return text.substr(open + 1, close - open - 1);
}

/// Metric names claimed by the doc: table rows whose kind cell is a metric
/// kind.  Span tables (kind-less) and prose mentions don't count as claims.
std::set<std::string> documented_metrics(const std::string& doc) {
  std::set<std::string> names;
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '|') continue;
    const auto cells = split_cells(line);
    bool is_metric_row = false;
    for (const auto& cell : cells) {
      if (cell == "counter" || cell == "gauge" || cell == "histogram") {
        is_metric_row = true;
        break;
      }
    }
    if (!is_metric_row || cells.empty()) continue;
    const std::string name = first_backticked(cells.front());
    if (!name.empty()) names.insert(name);
  }
  return names;
}

/// Relative markdown link targets: [text](target), minus URLs and anchors.
std::vector<std::string> relative_links(const std::string& doc) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 1 < doc.size(); ++i) {
    if (doc[i] != ']' || doc[i + 1] != '(') continue;
    const std::size_t close = doc.find(')', i + 2);
    if (close == std::string::npos) continue;
    std::string target = doc.substr(i + 2, close - i - 2);
    if (target.find("://") != std::string::npos) continue;  // absolute URL
    const std::size_t anchor = target.find('#');
    if (anchor != std::string::npos) target = target.substr(0, anchor);
    if (!target.empty()) out.push_back(target);
  }
  return out;
}

bool word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

/// `bench_*` target claims: maximal [a-z0-9_] tokens starting with "bench_",
/// not embedded in a longer identifier and not followed by '.' (file names).
std::set<std::string> bench_tokens(const std::string& doc) {
  std::set<std::string> out;
  const std::string prefix = "bench_";
  for (std::size_t i = doc.find(prefix); i != std::string::npos;
       i = doc.find(prefix, i + 1)) {
    if (i > 0 && word_char(doc[i - 1])) continue;
    std::size_t end = i + prefix.size();
    while (end < doc.size() && word_char(doc[end])) ++end;
    if (end == i + prefix.size()) continue;  // bare "bench_"
    if (end < doc.size() && doc[end] == '.') continue;  // a file name
    out.insert(doc.substr(i, end - i));
  }
  return out;
}

/// `--flag` claims: "--" followed by [a-z][a-z0-9-]*, not part of a longer
/// dash run (markdown rules like "----" never match).
std::set<std::string> flag_tokens(const std::string& doc) {
  std::set<std::string> out;
  for (std::size_t i = 0; i + 2 < doc.size(); ++i) {
    if (doc[i] != '-' || doc[i + 1] != '-') continue;
    if (i > 0 && doc[i - 1] == '-') continue;
    const char first = doc[i + 2];
    if (first < 'a' || first > 'z') continue;
    std::size_t end = i + 2;
    while (end < doc.size() &&
           ((doc[end] >= 'a' && doc[end] <= 'z') ||
            (doc[end] >= '0' && doc[end] <= '9') || doc[end] == '-')) {
      ++end;
    }
    std::string name = doc.substr(i + 2, end - i - 2);
    while (!name.empty() && name.back() == '-') name.pop_back();  // "--foo--"
    if (!name.empty()) out.insert(name);
    i = end;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: check_docs <repo_root>\n";
    return 2;
  }
  const fs::path root = argv[1];
  int failures = 0;
  const auto fail = [&failures](const std::string& message) {
    std::cerr << "FAIL: " << message << "\n";
    ++failures;
  };

  try {
    // --- 1. metric catalog vs doc/OBSERVABILITY.md, both directions.
    const fs::path obs_doc = root / "doc" / "OBSERVABILITY.md";
    const std::string doc = read_file(obs_doc);

    for (const std::string& name : documented_metrics(doc)) {
      if (!aarc::obs::is_catalogued_metric(name)) {
        fail("doc/OBSERVABILITY.md documents `" + name +
             "`, which is not in obs::metric_catalog()");
      }
    }
    for (const auto& info : aarc::obs::metric_catalog()) {
      if (doc.find(info.name) == std::string::npos) {
        fail(std::string("metric `") + info.name +
             "` is in obs::metric_catalog() but missing from doc/OBSERVABILITY.md");
      }
    }

    // --- 2. relative links across the documentation set.
    std::vector<fs::path> docs = {root / "README.md", root / "DESIGN.md",
                                  root / "ROADMAP.md"};
    for (const auto& entry : fs::directory_iterator(root / "doc")) {
      if (entry.path().extension() == ".md") docs.push_back(entry.path());
    }
    for (const auto& path : docs) {
      if (!fs::exists(path)) continue;  // optional top-level docs
      const std::string text = read_file(path);
      for (const std::string& target : relative_links(text)) {
        const fs::path resolved = path.parent_path() / target;
        if (!fs::exists(resolved)) {
          fail(path.lexically_relative(root).string() + " links to " + target +
               ", which does not exist");
        }
      }
    }

    // --- 3 & 4. bench-name and flag claims across the documentation set.
    std::set<std::string> bench_targets;
    for (const auto& entry : fs::directory_iterator(root / "bench")) {
      if (entry.path().extension() == ".cpp") {
        bench_targets.insert(entry.path().stem().string());
      }
    }
    std::string flag_sources = read_file(root / "tools" / "aarc_cli.cpp");
    for (const auto& entry : fs::directory_iterator(root / "bench")) {
      if (entry.path().extension() == ".cpp") flag_sources += read_file(entry.path());
    }
    const std::set<std::string> external_flags = {
        "always", "dirty",               // git describe
        "build", "test-dir", "output-on-failure",  // cmake / ctest
    };

    std::vector<fs::path> claim_docs = docs;
    claim_docs.push_back(root / "EXPERIMENTS.md");
    for (const auto& path : claim_docs) {
      if (!fs::exists(path)) continue;
      const std::string text = read_file(path);
      const std::string where = path.lexically_relative(root).string();
      for (const std::string& token : bench_tokens(text)) {
        std::string target = token;
        const std::string smoke = "_smoke";
        if (target.size() > smoke.size() &&
            target.compare(target.size() - smoke.size(), smoke.size(), smoke) == 0) {
          target.resize(target.size() - smoke.size());
        }
        if (bench_targets.count(target) == 0) {
          fail(where + " names `" + token +
               "`, which matches no target under bench/");
        }
      }
      for (const std::string& flag : flag_tokens(text)) {
        if (external_flags.count(flag) != 0) continue;
        if (flag_sources.find("--" + flag) != std::string::npos) continue;
        if (flag_sources.find("\"" + flag + "\"") != std::string::npos) continue;
        fail(where + " documents `--" + flag +
             "`, which no CLI or bench source accepts");
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (failures > 0) {
    std::cerr << failures << " documentation check(s) failed\n";
    return 1;
  }
  std::cout << "documentation checks passed\n";
  return 0;
}
