// check_docs — documentation consistency checker, wired as a CTest.
//
// Two guarantees, both against the code as built:
//
//   1. Metric catalog <-> doc/OBSERVABILITY.md agree in both directions.
//      Every metric row in the doc's catalog tables (a table row whose kind
//      cell is counter/gauge/histogram) must name a metric in
//      obs::metric_catalog(), and every catalogued metric must appear
//      somewhere in the doc.  Renaming or adding a metric without updating
//      the doc fails `ctest`.
//
//   2. Relative markdown links resolve.  Every [text](path.md) style link in
//      README.md, DESIGN.md, ROADMAP.md and doc/*.md must point at a file
//      that exists (anchors are stripped; absolute URLs are ignored).
//
// Usage: check_docs <repo_root>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metric_names.h"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string trim(const std::string& text) {
  std::size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split_cells(const std::string& row) {
  std::vector<std::string> cells;
  std::string cell;
  // Skip the leading '|'; every '|' afterwards closes a cell.
  for (std::size_t i = 1; i < row.size(); ++i) {
    if (row[i] == '|') {
      cells.push_back(trim(cell));
      cell.clear();
    } else {
      cell += row[i];
    }
  }
  return cells;
}

/// First `backticked` token of a string, or "" when none.
std::string first_backticked(const std::string& text) {
  const std::size_t open = text.find('`');
  if (open == std::string::npos) return "";
  const std::size_t close = text.find('`', open + 1);
  if (close == std::string::npos) return "";
  return text.substr(open + 1, close - open - 1);
}

/// Metric names claimed by the doc: table rows whose kind cell is a metric
/// kind.  Span tables (kind-less) and prose mentions don't count as claims.
std::set<std::string> documented_metrics(const std::string& doc) {
  std::set<std::string> names;
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '|') continue;
    const auto cells = split_cells(line);
    bool is_metric_row = false;
    for (const auto& cell : cells) {
      if (cell == "counter" || cell == "gauge" || cell == "histogram") {
        is_metric_row = true;
        break;
      }
    }
    if (!is_metric_row || cells.empty()) continue;
    const std::string name = first_backticked(cells.front());
    if (!name.empty()) names.insert(name);
  }
  return names;
}

/// Relative markdown link targets: [text](target), minus URLs and anchors.
std::vector<std::string> relative_links(const std::string& doc) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 1 < doc.size(); ++i) {
    if (doc[i] != ']' || doc[i + 1] != '(') continue;
    const std::size_t close = doc.find(')', i + 2);
    if (close == std::string::npos) continue;
    std::string target = doc.substr(i + 2, close - i - 2);
    if (target.find("://") != std::string::npos) continue;  // absolute URL
    const std::size_t anchor = target.find('#');
    if (anchor != std::string::npos) target = target.substr(0, anchor);
    if (!target.empty()) out.push_back(target);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: check_docs <repo_root>\n";
    return 2;
  }
  const fs::path root = argv[1];
  int failures = 0;
  const auto fail = [&failures](const std::string& message) {
    std::cerr << "FAIL: " << message << "\n";
    ++failures;
  };

  try {
    // --- 1. metric catalog vs doc/OBSERVABILITY.md, both directions.
    const fs::path obs_doc = root / "doc" / "OBSERVABILITY.md";
    const std::string doc = read_file(obs_doc);

    for (const std::string& name : documented_metrics(doc)) {
      if (!aarc::obs::is_catalogued_metric(name)) {
        fail("doc/OBSERVABILITY.md documents `" + name +
             "`, which is not in obs::metric_catalog()");
      }
    }
    for (const auto& info : aarc::obs::metric_catalog()) {
      if (doc.find(info.name) == std::string::npos) {
        fail(std::string("metric `") + info.name +
             "` is in obs::metric_catalog() but missing from doc/OBSERVABILITY.md");
      }
    }

    // --- 2. relative links across the documentation set.
    std::vector<fs::path> docs = {root / "README.md", root / "DESIGN.md",
                                  root / "ROADMAP.md"};
    for (const auto& entry : fs::directory_iterator(root / "doc")) {
      if (entry.path().extension() == ".md") docs.push_back(entry.path());
    }
    for (const auto& path : docs) {
      if (!fs::exists(path)) continue;  // optional top-level docs
      const std::string text = read_file(path);
      for (const std::string& target : relative_links(text)) {
        const fs::path resolved = path.parent_path() / target;
        if (!fs::exists(resolved)) {
          fail(path.lexically_relative(root).string() + " links to " + target +
               ", which does not exist");
        }
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (failures > 0) {
    std::cerr << failures << " documentation check(s) failed\n";
    return 1;
  }
  std::cout << "documentation checks passed\n";
  return 0;
}
