// The Input-Aware Configuration Engine (paper §IV-D) in action.
//
// Builds per-input-class configurations for the Video Analysis workflow,
// then simulates a request stream of mixed video sizes: each request is
// classified by its input features (size, bitrate, duration) and executed
// under its class's configuration.  Compares against serving every request
// with one fixed worst-case-provisioned configuration.

#include <iostream>

#include "inputaware/engine.h"
#include "platform/executor.h"
#include "support/table.h"
#include "workloads/catalog.h"

using namespace aarc;

int main() {
  workloads::Workload w = workloads::make_by_name("video_analysis");
  // For a *continuous* request stream each class must be provisioned for its
  // worst case, so build every class configuration at the class's upper
  // scale bound (the paper's Fig. 8 evaluates three discrete input sizes,
  // where the representative scales suffice).
  w.input_classes = {{workloads::InputClass::Light, 0.5},
                     {workloads::InputClass::Middle, 1.5},
                     {workloads::InputClass::Heavy, 1.8}};
  const platform::Executor executor;
  const platform::ConfigGrid grid;

  std::cout << "building per-class configurations (light/middle/heavy)...\n";
  inputaware::InputAwareEngine engine(w, executor, grid);
  const std::size_t samples = engine.build();
  std::cout << "done: " << samples << " profiling samples\n\n";

  support::Table config_table({"class", "scale", "example function", "vCPU", "MB"});
  for (auto c : {workloads::InputClass::Light, workloads::InputClass::Middle,
                 workloads::InputClass::Heavy}) {
    const auto& cc = engine.configuration(c);
    const auto ex0 = w.workflow.function_id("extract_0");
    config_table.add_row({to_string(c), support::format_double(cc.scale, 2), "extract_0",
                          support::format_double(cc.report.result.best_config[ex0].vcpu, 1),
                          support::format_double(
                              cc.report.result.best_config[ex0].memory_mb, 0)});
  }
  std::cout << config_table.to_markdown() << "\n";

  // A stream of 30 requests with mixed input sizes.
  const inputaware::ReferenceInput ref;
  support::Rng rng(99);
  double engine_cost = 0.0;
  double fixed_cost = 0.0;
  std::size_t engine_violations = 0;
  std::size_t fixed_violations = 0;
  // Without the engine, a single SLO-safe configuration must be provisioned
  // for the worst-case (heavy) input.
  const auto& fixed_config =
      engine.configuration(workloads::InputClass::Heavy).report.result.best_config;

  for (int r = 0; r < 30; ++r) {
    const double factor = rng.uniform(0.1, 1.8);
    inputaware::InputDescriptor in = ref.descriptor;
    in.size_mb *= factor;
    in.bitrate_kbps *= factor;
    in.duration_seconds *= factor;

    const auto& cc = engine.dispatch(in);
    // Execute under the dispatched class configuration at the true scale.
    const double true_scale = factor;
    support::Rng run_rng = rng.split(static_cast<std::uint64_t>(r));
    const auto engine_run =
        executor.execute(w.workflow, cc.report.result.best_config, true_scale, run_rng);
    const auto fixed_run = executor.execute(w.workflow, fixed_config, true_scale, run_rng);

    engine_cost += engine_run.total_cost;
    if (engine_run.failed || engine_run.makespan > w.slo_seconds) ++engine_violations;
    if (fixed_run.failed || fixed_run.makespan > w.slo_seconds) {
      ++fixed_violations;
      fixed_cost += fixed_run.observed_cost();  // charge what actually ran
    } else {
      fixed_cost += fixed_run.total_cost;
    }
  }

  support::Table result({"serving mode", "total cost (30 requests)", "SLO violations"});
  result.add_row({"input-aware engine", support::format_double(engine_cost, 0),
                  std::to_string(engine_violations)});
  result.add_row({"fixed worst-case config", support::format_double(fixed_cost, 0),
                  std::to_string(fixed_violations)});
  std::cout << result.to_markdown();
  std::cout << "\nthe engine adapts the allocation per request class: cheaper on small\n"
               "inputs and SLO-safe on large ones (paper Fig. 8).\n";
  return 0;
}
