// Compare AARC against the two baselines (Bayesian Optimization and MAFF)
// on one workload: search totals, final configuration quality, and the
// validation protocol of the paper's Table II (100 noisy executions).
//
// Usage: baseline_comparison [chatbot|ml_pipeline|video_analysis]

#include <iostream>
#include <string>

#include "aarc/scheduler.h"
#include "baselines/bo/bo_optimizer.h"
#include "baselines/maff/maff.h"
#include "platform/profiler.h"
#include "report/comparison.h"
#include "workloads/catalog.h"

int main(int argc, char** argv) {
  using namespace aarc;

  const std::string name = argc > 1 ? argv[1] : "chatbot";
  const workloads::Workload workload = workloads::make_by_name(name);
  const platform::Executor executor;
  const platform::ConfigGrid grid;

  std::cout << "workload: " << name << "  SLO " << workload.slo_seconds << " s\n\n";

  std::vector<report::MethodRun> runs;
  std::vector<report::ValidationRun> validations;
  const platform::Profiler profiler(executor);
  support::Rng validation_rng(99);

  auto validate = [&](const std::string& method, const search::SearchResult& result) {
    if (!result.found_feasible) return;
    report::ValidationRun v;
    v.method = method;
    v.workload = name;
    v.slo_seconds = workload.slo_seconds;
    v.profile = profiler.profile(workload.workflow, result.best_config, 100, validation_rng);
    validations.push_back(std::move(v));
  };

  // AARC.
  {
    const core::GraphCentricScheduler scheduler(executor, grid);
    auto report = scheduler.schedule(workload.workflow, workload.slo_seconds);
    validate("AARC", report.result);
    runs.push_back({"AARC", name, std::move(report.result)});
  }
  // Bayesian Optimization.
  {
    search::Evaluator evaluator(workload.workflow, executor, workload.slo_seconds, 1.0, 31);
    auto result = baselines::bayesian_optimization(evaluator, grid);
    validate("BO", result);
    runs.push_back({"BO", name, std::move(result)});
  }
  // MAFF.
  {
    search::Evaluator evaluator(workload.workflow, executor, workload.slo_seconds, 1.0, 32);
    auto result = baselines::maff_gradient_descent(evaluator, grid);
    validate("MAFF", result);
    runs.push_back({"MAFF", name, std::move(result)});
  }

  std::cout << "=== search totals (Fig. 5) ===\n"
            << report::search_totals_table(runs).to_markdown() << "\n";

  std::cout << "=== incumbent cost by sample (Fig. 7) ===\n";
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cost_series;
  for (const auto& run : runs) {
    labels.push_back(run.method);
    cost_series.push_back(run.result.trace.incumbent_cost_series());
  }
  std::cout << report::series_table(labels, cost_series, 10).to_markdown() << "\n";

  std::cout << "=== validation, 100 runs each (Table II) ===\n"
            << report::validation_table(validations).to_markdown();
  return 0;
}
