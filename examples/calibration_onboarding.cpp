// Onboarding a workload from measurements.
//
// A real adopter has no analytic models — only the ability to run their
// functions at chosen configurations and time them.  This example runs that
// loop end to end: measure every Chatbot function on a small plan (with
// OOM-boundary probing), fit analytic models to the samples, schedule on
// the *fitted* workflow, and validate the result against the "real" one.

#include <iostream>

#include "aarc/scheduler.h"
#include "platform/profiler.h"
#include "support/table.h"
#include "workloads/calibrated.h"
#include "workloads/catalog.h"

using namespace aarc;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "chatbot";
  const workloads::Workload w = workloads::make_by_name(name);
  const platform::Executor executor;
  const platform::ConfigGrid grid;

  // 1. Measure + fit.
  std::cout << "measuring and fitting " << name << "...\n";
  const auto calibration = workloads::calibrate_workflow(w.workflow, executor);
  support::Table fits({"function", "fit MSLE"});
  for (dag::NodeId id = 0; id < w.workflow.function_count(); ++id) {
    fits.add_row({w.workflow.function_name(id),
                  support::format_double(calibration.fit_errors[id], 4)});
  }
  std::cout << fits.to_markdown();
  std::cout << "total measurements: " << calibration.measurements << "\n\n";

  // 2. Schedule on the fitted workflow.
  const core::GraphCentricScheduler scheduler(executor, grid);
  const auto fitted = scheduler.schedule(calibration.workflow, w.slo_seconds);
  if (!fitted.result.found_feasible) {
    std::cout << "no feasible configuration found on the fitted models\n";
    return 1;
  }

  // 3. Validate the configuration against the *true* workload, and compare
  // with what scheduling on ground truth would have achieved.
  const auto truth = scheduler.schedule(w.workflow, w.slo_seconds);
  const platform::Profiler profiler(executor);
  support::Rng rng(4242);
  const auto fitted_val =
      profiler.profile(w.workflow, fitted.result.best_config, 100, rng);
  support::Rng rng2(4242);
  const auto truth_val =
      profiler.profile(w.workflow, truth.result.best_config, 100, rng2);

  support::Table compare({"schedule computed on", "runtime (s)", "mean cost",
                          "meets SLO"});
  compare.add_row({"ground-truth models",
                   support::format_mean_std(truth_val.makespan.mean,
                                            truth_val.makespan.stddev, 1),
                   support::format_double(truth_val.cost.mean, 1),
                   truth_val.makespan.mean <= w.slo_seconds ? "yes" : "NO"});
  compare.add_row({"fitted models",
                   fitted_val.makespans.empty()
                       ? "OOM"
                       : support::format_mean_std(fitted_val.makespan.mean,
                                                  fitted_val.makespan.stddev, 1),
                   support::format_double(fitted_val.cost.mean, 1),
                   !fitted_val.makespans.empty() &&
                           fitted_val.makespan.mean <= w.slo_seconds
                       ? "yes"
                       : "NO"});
  std::cout << compare.to_markdown();
  std::cout << "\nthe fitted-model schedule costs "
            << support::format_percent(
                   fitted_val.cost.mean / truth_val.cost.mean - 1.0, 1)
            << " more than the ground-truth schedule — the price of learning the\n"
               "surfaces from " << calibration.measurements << " measurements.\n";
  return 0;
}
