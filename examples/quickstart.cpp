// Quickstart: configure a serverless workflow with AARC.
//
// Builds the paper's Chatbot workflow, runs the Graph-Centric Scheduler
// against its 120 s SLO, and prints the decoupled per-function configuration
// plus the cost saving versus the over-provisioned base configuration.

#include <iostream>

#include "aarc/scheduler.h"
#include "platform/executor.h"
#include "platform/profiler.h"
#include "support/table.h"
#include "workloads/catalog.h"

int main(int argc, char** argv) {
  using namespace aarc;

  // The simulated serverless platform: decoupled pricing, ~3% runtime noise.
  const platform::Executor executor;
  const platform::ConfigGrid grid;  // 0.1..10 vCPU x 128..10240 MB

  // The workload a developer would submit, together with its SLO.
  const workloads::Workload workload = workloads::make_by_name(argc > 1 ? argv[1] : "chatbot");
  std::cout << "workflow: " << workload.workflow.name() << "  (SLO "
            << workload.slo_seconds << " s, " << workload.workflow.function_count()
            << " functions)\n\n";

  // Run AARC (Algorithm 1 + Algorithm 2).
  const core::GraphCentricScheduler scheduler(executor, grid);
  const core::ScheduleReport report =
      scheduler.schedule(workload.workflow, workload.slo_seconds);

  std::cout << "samples used: " << report.result.samples() << "\n";
  std::cout << "search wall time (simulated): "
            << support::format_double(report.result.trace.total_sampling_runtime(), 1)
            << " s\n";
  std::cout << "feasible configuration found: "
            << (report.result.found_feasible ? "yes" : "no") << "\n\n";

  support::Table table({"function", "vCPU", "memory (MB)"});
  for (dag::NodeId id = 0; id < workload.workflow.function_count(); ++id) {
    const auto& rc = report.result.best_config[id];
    table.add_row({workload.workflow.function_name(id),
                   support::format_double(rc.vcpu, 1),
                   support::format_double(rc.memory_mb, 0)});
  }
  std::cout << table.to_markdown() << "\n";

  // Validate: 100 noisy executions under the final configuration vs base.
  support::Rng rng(123);
  const platform::Profiler profiler(executor);
  const auto base = platform::uniform_config(workload.workflow.function_count(),
                                             grid.max_config());
  const auto base_report = profiler.profile(workload.workflow, base, 100, rng);
  const auto aarc_report =
      profiler.profile(workload.workflow, report.result.best_config, 100, rng);

  std::cout << "base config:  runtime "
            << support::format_mean_std(base_report.makespan.mean,
                                        base_report.makespan.stddev)
            << " s, mean cost " << support::format_double(base_report.cost.mean, 1) << "\n";
  std::cout << "AARC config:  runtime "
            << support::format_mean_std(aarc_report.makespan.mean,
                                        aarc_report.makespan.stddev)
            << " s, mean cost " << support::format_double(aarc_report.cost.mean, 1) << "\n";
  std::cout << "cost saving vs base: "
            << support::format_percent(
                   1.0 - aarc_report.cost.mean / base_report.cost.mean, 1)
            << "\n";
  return 0;
}
