// The adaptive controller reacting to input drift.
//
// A Video-Analysis-like deployment starts serving "middle" inputs; halfway
// through the trace the input mix drifts heavier.  The drift monitor's EWMA
// detects the sustained slowdown and the controller re-runs AARC at the
// estimated new scale.  Compare the request-level SLO compliance with and
// without the controller.

#include <iostream>

#include "adaptive/controller.h"
#include "platform/executor.h"
#include "support/table.h"
#include "workloads/catalog.h"

using namespace aarc;

int main() {
  const workloads::Workload w = workloads::make_by_name("video_analysis");
  const platform::Executor executor;
  const platform::ConfigGrid grid;

  adaptive::ControllerOptions copts;
  copts.monitor.min_observations = 5;
  copts.min_observations_between_reconfigs = 5;
  adaptive::AdaptiveController controller(w, executor, grid, copts);

  // The same initial configuration, left alone (no controller).
  const platform::WorkflowConfig static_config = controller.current_config();

  std::cout << "deployed initial config; expected runtime "
            << support::format_double(controller.monitor().expected(), 1) << " s\n\n";

  // Request trace: 30 at scale 1.0, then the mix drifts to scale 1.7.
  support::Rng rng(404);
  std::size_t adaptive_violations = 0;
  std::size_t static_violations = 0;
  std::size_t reconfigs_at = 0;
  support::Table timeline({"request", "scale", "runtime (adaptive)",
                           "runtime (static)", "event"});
  for (int i = 0; i < 60; ++i) {
    const double scale = i < 30 ? 1.0 : 1.7;

    support::Rng run_rng = rng.split(static_cast<std::uint64_t>(i));
    const auto adaptive_run =
        executor.execute(w.workflow, controller.current_config(), scale, run_rng);
    const auto static_run = executor.execute(w.workflow, static_config, scale, run_rng);

    std::string event;
    if (!adaptive_run.failed && controller.observe(adaptive_run.makespan)) {
      event = "reconfigured (scale estimate " +
              support::format_double(controller.current_scale_estimate(), 2) + ")";
      ++reconfigs_at;
    }
    const bool a_viol = adaptive_run.failed || adaptive_run.makespan > w.slo_seconds;
    const bool s_viol = static_run.failed || static_run.makespan > w.slo_seconds;
    adaptive_violations += a_viol ? 1 : 0;
    static_violations += s_viol ? 1 : 0;

    if (i % 6 == 0 || !event.empty()) {
      timeline.add_row(
          {std::to_string(i), support::format_double(scale, 1),
           adaptive_run.failed ? "OOM"
                               : support::format_double(adaptive_run.makespan, 0) +
                                     (a_viol ? " (SLO!)" : ""),
           static_run.failed ? "OOM"
                             : support::format_double(static_run.makespan, 0) +
                                   (s_viol ? " (SLO!)" : ""),
           event});
    }
  }

  std::cout << timeline.to_markdown() << "\n";
  std::cout << "SLO violations over 60 requests (SLO "
            << support::format_double(w.slo_seconds, 0) << " s):\n";
  std::cout << "  with adaptive controller: " << adaptive_violations << " ("
            << controller.reconfigurations() << " reconfigurations)\n";
  std::cout << "  static configuration:     " << static_violations << "\n";
  return 0;
}
