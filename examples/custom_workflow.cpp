// Building and configuring your own workflow with the public API.
//
// Models a document-processing pipeline: an OCR stage fans out to three
// language-specific NLP stages, which join into an indexing stage.  Shows:
//   * composing function performance models (AnalyticModel / CompositeModel);
//   * DAG construction and validation;
//   * critical-path inspection and DOT export (paste into Graphviz);
//   * running AARC and reading the resulting configuration.

#include <iostream>

#include "aarc/scheduler.h"
#include "dag/critical_path.h"
#include "dag/dot.h"
#include "perf/analytic.h"
#include "perf/composite.h"
#include "platform/executor.h"
#include "support/table.h"

using namespace aarc;

namespace {

std::unique_ptr<perf::PerfModel> make_model(double io, double serial, double parallel,
                                            double max_par, double working_set,
                                            double min_mem) {
  perf::AnalyticParams p;
  p.io_seconds = io;
  p.serial_seconds = serial;
  p.parallel_seconds = parallel;
  p.max_parallelism = max_par;
  p.working_set_mb = working_set;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 3.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

/// A function whose body is "download, then compute": a two-stage composite.
std::unique_ptr<perf::PerfModel> download_then_compute() {
  std::vector<std::unique_ptr<perf::PerfModel>> stages;
  stages.push_back(make_model(4.0, 0.5, 0.0, 1.0, 256.0, 128.0));   // download
  stages.push_back(make_model(0.5, 3.0, 24.0, 4.0, 900.0, 512.0));  // compute
  return std::make_unique<perf::CompositeModel>(std::move(stages));
}

}  // namespace

int main() {
  // 1. Describe the workflow.
  platform::Workflow wf("doc_pipeline");
  const auto ocr = wf.add_function("ocr", download_then_compute());
  const auto nlp_en = wf.add_function("nlp_en", make_model(1, 4, 30, 4, 700, 384));
  const auto nlp_de = wf.add_function("nlp_de", make_model(1, 5, 24, 4, 650, 384));
  const auto nlp_fr = wf.add_function("nlp_fr", make_model(1, 4, 20, 4, 600, 384));
  const auto index = wf.add_function("index", make_model(3, 6, 4, 2, 500, 256));
  wf.add_edge(ocr, nlp_en);
  wf.add_edge(ocr, nlp_de);
  wf.add_edge(ocr, nlp_fr);
  wf.add_edge(nlp_en, index);
  wf.add_edge(nlp_de, index);
  wf.add_edge(nlp_fr, index);
  wf.validate();

  // 2. The platform and the SLO the developer promises downstream.
  const platform::Executor executor;
  const platform::ConfigGrid grid;
  const double slo_seconds = 60.0;

  // 3. Let AARC configure it.
  const core::GraphCentricScheduler scheduler(executor, grid);
  const auto report = scheduler.schedule(wf, slo_seconds);

  // 4. Inspect: critical path, detours, final configuration.
  std::cout << "critical path:";
  for (dag::NodeId id : report.critical_path) std::cout << " " << wf.function_name(id);
  std::cout << "\nsub-paths configured: " << report.subpath_count << "\n";
  std::cout << "samples used: " << report.result.samples() << "\n\n";

  support::Table table({"function", "vCPU", "memory (MB)"});
  for (dag::NodeId id = 0; id < wf.function_count(); ++id) {
    const auto& rc = report.result.best_config[id];
    table.add_row({wf.function_name(id), support::format_double(rc.vcpu, 1),
                   support::format_double(rc.memory_mb, 0)});
  }
  std::cout << table.to_markdown() << "\n";

  const auto final_run = executor.execute_mean(wf, report.result.best_config);
  std::cout << "expected end-to-end runtime: "
            << support::format_double(final_run.makespan, 1) << " s (SLO " << slo_seconds
            << " s)\nexpected per-request cost: "
            << support::format_double(final_run.total_cost, 1) << "\n\n";

  // 5. Export the weighted DAG with the critical path highlighted.
  platform::Workflow annotated = wf.clone();
  annotated.mutable_graph().set_weights(final_run.runtimes());
  const dag::Path cp = dag::find_critical_path(annotated.graph());
  dag::DotOptions dot;
  dot.highlight = &cp;
  std::cout << "Graphviz DOT (render with `dot -Tpng`):\n"
            << dag::to_dot(annotated.graph(), dot);
  return 0;
}
