// Stress study on synthetic workflows: how AARC behaves across topology
// patterns (scatter / broadcast / chain / random) and sizes, versus the
// baselines.  Useful for exploring beyond the paper's three applications.
//
// Usage: synthetic_stress [seed]

#include <cstdlib>
#include <iostream>

#include "aarc/scheduler.h"
#include "baselines/bo/bo_optimizer.h"
#include "baselines/maff/maff.h"
#include "platform/executor.h"
#include "support/table.h"
#include "workloads/synthetic.h"

using namespace aarc;

int main(int argc, char** argv) {
  const std::uint64_t base_seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  const platform::Executor executor;
  const platform::ConfigGrid grid;

  support::Table table({"pattern", "functions", "SLO (s)", "AARC cost", "BO cost",
                        "MAFF cost", "AARC samples"});

  for (auto pattern : {workloads::Pattern::Scatter, workloads::Pattern::Broadcast,
                       workloads::Pattern::Chain, workloads::Pattern::Random}) {
    for (std::size_t width : {2, 4}) {
      workloads::SyntheticOptions opts;
      opts.pattern = pattern;
      opts.layers = 3;
      opts.width = width;
      opts.seed = base_seed + width;
      const workloads::Workload w = workloads::make_synthetic(opts);

      const core::GraphCentricScheduler scheduler(executor, grid);
      const auto aarc = scheduler.schedule(w.workflow, w.slo_seconds);

      search::Evaluator bo_ev(w.workflow, executor, w.slo_seconds, 1.0, 21);
      baselines::BoOptions bo_opts;
      bo_opts.max_samples = 60;
      const auto bo = baselines::bayesian_optimization(bo_ev, grid, bo_opts);

      search::Evaluator maff_ev(w.workflow, executor, w.slo_seconds, 1.0, 22);
      const auto maff = baselines::maff_gradient_descent(maff_ev, grid);

      auto cost_of = [&](const search::SearchResult& r) -> std::string {
        if (!r.found_feasible) return "infeasible";
        const auto run = executor.execute_mean(w.workflow, r.best_config);
        return support::format_double(run.total_cost, 0);
      };
      table.add_row({to_string(pattern), std::to_string(w.workflow.function_count()),
                     support::format_double(w.slo_seconds, 0), cost_of(aarc.result),
                     cost_of(bo), cost_of(maff),
                     std::to_string(aarc.result.samples())});
    }
  }
  std::cout << "# AARC vs baselines on synthetic workflow topologies\n\n"
            << table.to_markdown();
  std::cout << "\n(seed " << base_seed << "; rerun with a different seed to vary the "
            << "generated population)\n";
  return 0;
}
